(* The serving-path battery: admission-control semantics under a virtual
   clock, and the network front end (lib/serve/net.ml) under concurrency,
   protocol abuse, and connection faults.

   Every net test runs the real event loop (Net.serve in a thread, over a
   Unix-domain or TCP socket) against real client sockets; the assertions
   are the protocol's contract: one typed response per request line,
   strictly in per-connection order, never a crash, and exact telemetry. *)

module Server = Tgd_serve.Server
module Net = Tgd_serve.Net
module Admission = Tgd_serve.Admission
module Telemetry = Tgd_exec.Telemetry

let uni_source = "professor(X) -> person(X). professor(ada). professor(turing)."
let execute_line ~id ?tenant () =
  let tenant = match tenant with None -> "" | Some t -> Printf.sprintf {|,"tenant":%S|} t in
  Printf.sprintf
    {|{"id":%d%s,"op":"execute","ontology":"uni","query":"q(X) :- person(X)."}|} id tenant

let register_line ~id =
  Printf.sprintf {|{"id":%d,"op":"register-ontology","name":"uni","source":%S}|} id uni_source

let expected_answers = {|"answers":[["ada"],["turing"]]|}

(* ------------------------------------------------------------------ *)
(* Blocking test clients                                               *)

type client = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
}

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; rbuf = Buffer.create 256 }

let connect_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; rbuf = Buffer.create 256 }

let send c s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring c.fd s off (n - off)) in
  go 0

let send_line c s = send c (s ^ "\n")

(* One response line, or [None] on clean EOF. Bounded wait so a wedged
   server fails the test instead of hanging the suite. *)
let recv_line ?(timeout = 10.0) c =
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec take () =
    let s = Buffer.contents c.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.rbuf;
      Buffer.add_substring c.rbuf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "recv_line: timeout";
      (match Unix.select [ c.fd ] [] [] 0.5 with
      | [], _, _ -> take ()
      | _ -> (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length c.rbuf = 0 then None else Alcotest.fail "EOF mid-line"
        | n ->
          Buffer.add_subbytes c.rbuf chunk 0 n;
          take ()))
  in
  take ()

let recv_line_exn ?timeout c =
  match recv_line ?timeout c with
  | Some l -> l
  | None -> Alcotest.fail "unexpected EOF"

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i j = j = nn || (hay.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + nn <= nh && (at i 0 || go (i + 1)) in
  nn = 0 || go 0

let check_contains what line needle =
  Alcotest.(check bool) (what ^ ": " ^ needle ^ " in " ^ line) true (contains line needle)

(* ------------------------------------------------------------------ *)
(* Server harness: Net.serve in a thread, always joined.               *)

let with_server ?(workers = 2) ?queue_bound ?max_clients ?max_line ?rate ?burst ?max_inflight
    ?now f =
  let srv = Server.create () in
  let path = Filename.temp_file "tgd_net" ".sock" in
  let listener = Net.listen (Net.Unix_path path) in
  let thread =
    Thread.create
      (fun () ->
        Net.serve ~workers ?queue_bound ?max_clients ?max_line ?rate ?burst ?max_inflight ?now
          srv ~listeners:[ listener ])
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = connect_unix path in
         send_line c {|{"id":-1,"op":"shutdown"}|};
         ignore (recv_line c);
         close c
       with _ -> ());
      Thread.join thread;
      Server.shutdown srv;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path srv)

let registered c =
  let line = recv_line_exn c in
  check_contains "register" line {|"ok":true|};
  line

(* ------------------------------------------------------------------ *)
(* Net: round trips, interleaving, ordering                            *)

let test_roundtrip_and_interleave () =
  with_server @@ fun path srv ->
  let a = connect_unix path in
  send_line a (register_line ~id:1);
  ignore (registered a);
  let b = connect_unix path in
  (* Pipeline on both connections: per-connection order must hold even
     though the requests interleave through the pool. *)
  send_line b (execute_line ~id:10 ());
  send_line b {|{"id":11,"op":"ping"}|};
  send_line a (execute_line ~id:2 ());
  let b1 = recv_line_exn b in
  let b2 = recv_line_exn b in
  let a1 = recv_line_exn a in
  check_contains "b execute first" b1 {|{"id":10,|};
  check_contains "b execute answers" b1 expected_answers;
  check_contains "b ping second (in-order even though computed first)" b2 {|{"id":11,|};
  check_contains "b pong" b2 {|"pong":true|};
  check_contains "a execute" a1 {|{"id":2,|};
  check_contains "a answers" a1 expected_answers;
  close a;
  close b;
  let tel = Server.telemetry srv in
  Alcotest.(check bool) "accepted >= 2" true (Telemetry.get tel "serve.net.accepted" >= 2)

let test_tcp_listener () =
  let srv = Server.create () in
  let listener = Net.listen (Net.Tcp ("127.0.0.1", 0)) in
  let port =
    match Net.listener_addr listener with
    | Net.Tcp (_, p) -> p
    | Net.Unix_path _ -> Alcotest.fail "expected tcp addr"
  in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  let thread =
    Thread.create (fun () -> Net.serve ~workers:1 srv ~listeners:[ listener ]) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join thread;
      Server.shutdown srv)
    (fun () ->
      let c = connect_tcp port in
      send_line c (register_line ~id:1);
      ignore (registered c);
      send_line c (execute_line ~id:2 ());
      check_contains "tcp execute" (recv_line_exn c) expected_answers;
      send_line c {|{"id":3,"op":"shutdown"}|};
      check_contains "tcp shutdown" (recv_line_exn c) {|"stopping":true|};
      close c)

let test_mutation_fence_ordering () =
  with_server @@ fun path _srv ->
  let c = connect_unix path in
  (* Pipelined: execute, mutate, execute. The fence must answer the first
     execute with the old instance and the second with the new fact. *)
  send_line c (register_line ~id:1);
  send_line c (execute_line ~id:2 ());
  send_line c {|{"id":3,"op":"add-facts","name":"uni","source":"professor,curie"}|};
  send_line c (execute_line ~id:4 ());
  ignore (registered c);
  let r2 = recv_line_exn c in
  let r3 = recv_line_exn c in
  let r4 = recv_line_exn c in
  check_contains "pre-mutation answers" r2 expected_answers;
  check_contains "mutation acked in order" r3 {|{"id":3,"ok":true|};
  check_contains "post-mutation answers include the new fact" r4 {|["curie"]|};
  close c

(* ------------------------------------------------------------------ *)
(* Net: protocol fault injection                                       *)

let test_malformed_lines_keep_connection () =
  with_server @@ fun path _srv ->
  let c = connect_unix path in
  send_line c (register_line ~id:1);
  ignore (registered c);
  send_line c "this is not json";
  check_contains "garbage -> typed error" (recv_line_exn c) {|"kind":"bad_request"|};
  send_line c {|{"op":|};
  check_contains "truncated json -> typed error" (recv_line_exn c) {|"kind":"bad_request"|};
  send_line c {|{"id":7,"op":"no-such-op"}|};
  let r = recv_line_exn c in
  check_contains "unknown op keeps the id" r {|{"id":7,|};
  check_contains "unknown op -> typed error" r {|"kind":"bad_request"|};
  send_line c {|{"id":8,"op":"execute","ontology":"uni","query":"q(X) :- person(X).","tenant":42}|};
  check_contains "non-string tenant -> typed error" (recv_line_exn c) {|"kind":"bad_request"|};
  (* Binary garbage (no newline bytes inside) is one malformed line. *)
  send c "\x00\x01\xfe\xff\x80garbage\x00\n";
  check_contains "binary garbage -> typed error" (recv_line_exn c) {|"kind":"bad_request"|};
  (* The connection survived all of it. *)
  send_line c (execute_line ~id:9 ());
  check_contains "connection still serves" (recv_line_exn c) expected_answers;
  close c

let test_oversized_line_drops_connection () =
  with_server ~max_line:256 @@ fun path _srv ->
  let a = connect_unix path in
  send_line a (register_line ~id:1);
  ignore (registered a);
  let b = connect_unix path in
  send b (String.make 600 'x');
  (* One typed error, then a clean drop. *)
  check_contains "oversize -> typed error" (recv_line_exn b) {|"kind":"bad_request"|};
  Alcotest.(check bool) "oversize -> connection dropped" true (recv_line b = None);
  close b;
  (* Other connections are untouched. *)
  send_line a (execute_line ~id:2 ());
  check_contains "survivor still serves" (recv_line_exn a) expected_answers;
  close a

let test_disconnect_mid_request () =
  with_server @@ fun path srv ->
  let a = connect_unix path in
  send_line a (register_line ~id:1);
  ignore (registered a);
  (* Disconnect with a request in flight: its response has nowhere to go
     and must be discarded without disturbing anyone else. *)
  let b = connect_unix path in
  send_line b (execute_line ~id:2 ());
  close b;
  (* Disconnect mid-line: an unterminated partial request is abandoned. *)
  let d = connect_unix path in
  send d {|{"id":3,"op":"exec|};
  close d;
  (* The loop processes the corpses; the survivor still gets answers. *)
  send_line a (execute_line ~id:4 ());
  check_contains "survivor answers" (recv_line_exn a) expected_answers;
  close a;
  let tel = Server.telemetry srv in
  Alcotest.(check bool) "drops counted" true (Telemetry.get tel "serve.net.closed" >= 2)

let test_half_closed_socket_gets_all_responses () =
  with_server @@ fun path _srv ->
  let c = connect_unix path in
  send_line c (register_line ~id:1);
  send_line c (execute_line ~id:2 ());
  send_line c {|{"id":3,"op":"ping"}|};
  (* Half-close: we will never write again, but we are owed 3 responses. *)
  Unix.shutdown c.fd Unix.SHUTDOWN_SEND;
  ignore (registered c);
  check_contains "half-closed still gets execute" (recv_line_exn c) expected_answers;
  check_contains "half-closed still gets ping" (recv_line_exn c) {|"pong":true|};
  Alcotest.(check bool) "then a clean EOF" true (recv_line c = None);
  close c

let test_max_clients_rejection () =
  with_server ~max_clients:1 @@ fun path srv ->
  let a = connect_unix path in
  send_line a {|{"id":1,"op":"ping"}|};
  check_contains "first client served" (recv_line_exn a) {|"pong":true|};
  let b = connect_unix path in
  let r = recv_line_exn b in
  check_contains "beyond max-clients -> overloaded" r {|"kind":"overloaded"|};
  Alcotest.(check bool) "and closed" true (recv_line b = None);
  close b;
  close a;
  Alcotest.(check int) "rejection counted" 1
    (Telemetry.get (Server.telemetry srv) "serve.net.rejected")

(* ------------------------------------------------------------------ *)
(* Net: concurrency stress                                             *)

let test_stress_no_lost_no_dup () =
  let n_conns = 8 and m_reqs = 25 in
  with_server ~workers:4 ~max_inflight:(n_conns * m_reqs) @@ fun path srv ->
  let c0 = connect_unix path in
  send_line c0 (register_line ~id:0);
  ignore (registered c0);
  let clients = Array.init n_conns (fun _ -> connect_unix path) in
  (* Pipeline everything up front: maximal interleaving through the pool. *)
  Array.iteri
    (fun ci c ->
      for k = 0 to m_reqs - 1 do
        let id = (ci * 1000) + k in
        if k mod 5 = 4 then send_line c (Printf.sprintf {|{"id":%d,"op":"ping"}|} id)
        else send_line c (execute_line ~id ())
      done)
    clients;
  (* Every connection gets exactly its m responses, ids strictly in send
     order, answers byte-identical on every execute. *)
  Array.iteri
    (fun ci c ->
      for k = 0 to m_reqs - 1 do
        let id = (ci * 1000) + k in
        let line = recv_line_exn c in
        check_contains "in-order id" line (Printf.sprintf {|{"id":%d,|} id);
        if k mod 5 = 4 then check_contains "pong" line {|"pong":true|}
        else check_contains "answers" line expected_answers
      done)
    clients;
  (* And not one response more. *)
  Array.iter
    (fun c ->
      Unix.shutdown c.fd Unix.SHUTDOWN_SEND;
      Alcotest.(check bool) "no extra responses" true (recv_line c = None);
      close c)
    clients;
  close c0;
  let tel = Server.telemetry srv in
  Alcotest.(check int) "every line counted"
    ((n_conns * m_reqs) + 1)
    (Telemetry.get tel "serve.net.lines");
  Alcotest.(check int) "nothing shed: overloaded" 0 (Telemetry.get tel "serve.shed.overloaded");
  Alcotest.(check int) "nothing shed: quota" 0 (Telemetry.get tel "serve.shed.quota");
  Alcotest.(check int) "accepted" (n_conns + 1) (Telemetry.get tel "serve.net.accepted")

let test_overload_shedding_exact_telemetry () =
  let m = 30 in
  with_server ~workers:1 ~max_inflight:1 @@ fun path srv ->
  let c = connect_unix path in
  send_line c (register_line ~id:0);
  ignore (registered c);
  let reqs = Buffer.create 4096 in
  for k = 1 to m do
    Buffer.add_string reqs (execute_line ~id:k ());
    Buffer.add_char reqs '\n'
  done;
  send c (Buffer.contents reqs);
  let served = ref 0 and shed = ref 0 in
  for k = 1 to m do
    let line = recv_line_exn c in
    check_contains "in-order id" line (Printf.sprintf {|{"id":%d,|} k);
    if contains line {|"kind":"overloaded"|} then incr shed
    else begin
      check_contains "served answers" line expected_answers;
      incr served
    end
  done;
  close c;
  Alcotest.(check int) "every request answered exactly once" m (!served + !shed);
  Alcotest.(check bool) "the burst actually overloaded the server" true (!shed > 0);
  Alcotest.(check int) "client-observed sheds == serve.shed.overloaded" !shed
    (Telemetry.get (Server.telemetry srv) "serve.shed.overloaded")

let test_close_during_drain () =
  let n_conns = 6 and m_reqs = 20 in
  with_server ~workers:2 ~max_inflight:(n_conns * m_reqs) @@ fun path srv ->
  let c0 = connect_unix path in
  send_line c0 (register_line ~id:0);
  ignore (registered c0);
  let clients = Array.init n_conns (fun _ -> connect_unix path) in
  Array.iteri
    (fun ci c ->
      for k = 0 to m_reqs - 1 do
        send_line c (execute_line ~id:((ci * 1000) + k) ())
      done)
    clients;
  (* Kill the odd connections while their requests drain through the pool;
     the even ones must still get every response, in order. *)
  Array.iteri (fun ci c -> if ci mod 2 = 1 then close c) clients;
  Array.iteri
    (fun ci c ->
      if ci mod 2 = 0 then begin
        for k = 0 to m_reqs - 1 do
          let line = recv_line_exn c in
          check_contains "survivor in-order id" line
            (Printf.sprintf {|{"id":%d,|} ((ci * 1000) + k));
          check_contains "survivor answers" line expected_answers
        done;
        close c
      end)
    clients;
  close c0;
  let tel = Server.telemetry srv in
  Alcotest.(check int) "every line was framed and counted"
    ((n_conns * m_reqs) + 1)
    (Telemetry.get tel "serve.net.lines")

(* ------------------------------------------------------------------ *)
(* Net: quotas end to end under a virtual clock                        *)

let test_quota_over_net () =
  let clock = Atomic.make 1000.0 in
  let now () = Atomic.get clock in
  with_server ~rate:1.0 ~burst:2.0 ~now @@ fun path srv ->
  let c = connect_unix path in
  send_line c (register_line ~id:0);
  ignore (registered c);
  (* Tenant t1 burns its burst of 2; the third request is shed with a
     deterministic retry hint (bucket empty, rate 1/s -> 1.000s). *)
  send_line c (execute_line ~id:1 ~tenant:"t1" ());
  send_line c (execute_line ~id:2 ~tenant:"t1" ());
  send_line c (execute_line ~id:3 ~tenant:"t1" ());
  check_contains "t1 first" (recv_line_exn c) expected_answers;
  check_contains "t1 second" (recv_line_exn c) expected_answers;
  let r3 = recv_line_exn c in
  check_contains "t1 third shed" r3 {|"kind":"quota_exceeded"|};
  check_contains "deterministic retry hint" r3 "retry in 1.000s";
  (* Tenant isolation: t2's bucket is untouched by t1's exhaustion. *)
  send_line c (execute_line ~id:4 ~tenant:"t2" ());
  check_contains "t2 unaffected" (recv_line_exn c) expected_answers;
  (* Virtual time passes; t1 earns one token back. *)
  Atomic.set clock 1001.0;
  send_line c (execute_line ~id:5 ~tenant:"t1" ());
  check_contains "t1 refilled after 1s" (recv_line_exn c) expected_answers;
  send_line c (execute_line ~id:6 ~tenant:"t1" ());
  check_contains "but only one token" (recv_line_exn c) {|"kind":"quota_exceeded"|};
  close c;
  Alcotest.(check int) "sheds counted in serve.shed.quota" 2
    (Telemetry.get (Server.telemetry srv) "serve.shed.quota")

(* ------------------------------------------------------------------ *)
(* Admission unit semantics (virtual clock, no sockets)                *)

let mk_admission ?rate ?burst ?max_inflight clock =
  Admission.create ~now:(fun () -> Atomic.get clock) ?rate ?burst ?max_inflight
    ~telemetry:(Telemetry.create ()) ()

let test_admission_refill_determinism () =
  let clock = Atomic.make 0.0 in
  let a = mk_admission ~rate:2.0 ~burst:4.0 clock in
  for i = 1 to 4 do
    match Admission.admit a ~tenant:"t" with
    | Admission.Admitted -> ()
    | _ -> Alcotest.fail (Printf.sprintf "burst admit %d refused" i)
  done;
  (match Admission.admit a ~tenant:"t" with
  | Admission.Quota_exceeded retry -> Alcotest.(check (float 1e-9)) "retry = 1/rate" 0.5 retry
  | _ -> Alcotest.fail "expected quota_exceeded");
  (* A quarter second refills half a token: still short, retry shrinks. *)
  Atomic.set clock 0.25;
  (match Admission.admit a ~tenant:"t" with
  | Admission.Quota_exceeded retry -> Alcotest.(check (float 1e-9)) "retry shrinks" 0.25 retry
  | _ -> Alcotest.fail "expected quota_exceeded");
  Atomic.set clock 0.5;
  (match Admission.admit a ~tenant:"t" with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "expected admit after exact refill");
  (* The bucket never refills beyond burst. *)
  Atomic.set clock 1000.0;
  Alcotest.(check (float 1e-9)) "capped at burst" 4.0 (Admission.tokens a ~tenant:"t")

let test_admission_tenant_isolation () =
  let clock = Atomic.make 0.0 in
  let tel = Telemetry.create () in
  let a =
    Admission.create ~now:(fun () -> Atomic.get clock) ~rate:1.0 ~burst:1.0 ~telemetry:tel ()
  in
  (match Admission.admit a ~tenant:"greedy" with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "greedy first");
  for _ = 1 to 5 do
    match Admission.admit a ~tenant:"greedy" with
    | Admission.Quota_exceeded _ -> ()
    | _ -> Alcotest.fail "greedy should be dry"
  done;
  (match Admission.admit a ~tenant:"modest" with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "greedy must not starve modest");
  Alcotest.(check int) "exact shed telemetry" 5 (Telemetry.get tel "serve.shed.quota")

let test_admission_overload_precedence () =
  let clock = Atomic.make 0.0 in
  let a = mk_admission ~rate:1.0 ~burst:1.0 ~max_inflight:2 clock in
  (match Admission.admit a ~tenant:"a" with Admission.Admitted -> () | _ -> Alcotest.fail "a");
  (match Admission.admit a ~tenant:"b" with Admission.Admitted -> () | _ -> Alcotest.fail "b");
  (* Server full: even a tenant with an empty bucket sees Overloaded (the
     overload check runs first, so full servers don't drain buckets). *)
  (match Admission.admit a ~tenant:"a" with
  | Admission.Overloaded n -> Alcotest.(check int) "inflight at rejection" 2 n
  | _ -> Alcotest.fail "expected overloaded");
  Alcotest.(check (float 1e-9)) "no token spent while overloaded" 0.0
    (Admission.tokens a ~tenant:"a");
  Admission.release a;
  Alcotest.(check int) "release frees a slot" 1 (Admission.inflight a);
  (match Admission.admit a ~tenant:"c" with Admission.Admitted -> () | _ -> Alcotest.fail "c");
  Alcotest.check_raises "release underflow is a bug"
    (Invalid_argument "Admission.release: nothing in flight") (fun () ->
      Admission.release a;
      Admission.release a;
      Admission.release a)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "admission",
        [
          Alcotest.test_case "token-bucket refill is deterministic" `Quick
            test_admission_refill_determinism;
          Alcotest.test_case "greedy tenant cannot starve another" `Quick
            test_admission_tenant_isolation;
          Alcotest.test_case "overload check precedes quota" `Quick
            test_admission_overload_precedence;
        ] );
      ( "net",
        [
          Alcotest.test_case "roundtrip + cross-connection interleave" `Quick
            test_roundtrip_and_interleave;
          Alcotest.test_case "tcp listener on an ephemeral port" `Quick test_tcp_listener;
          Alcotest.test_case "mutation fence orders pipelined requests" `Quick
            test_mutation_fence_ordering;
        ] );
      ( "faults",
        [
          Alcotest.test_case "malformed lines keep the connection" `Quick
            test_malformed_lines_keep_connection;
          Alcotest.test_case "oversized line: typed error then drop" `Quick
            test_oversized_line_drops_connection;
          Alcotest.test_case "disconnect mid-request" `Quick test_disconnect_mid_request;
          Alcotest.test_case "half-closed socket gets all responses" `Quick
            test_half_closed_socket_gets_all_responses;
          Alcotest.test_case "max-clients rejection" `Quick test_max_clients_rejection;
        ] );
      ( "stress",
        [
          Alcotest.test_case "N x M pipelined: no lost/dup, exact telemetry" `Quick
            test_stress_no_lost_no_dup;
          Alcotest.test_case "overload shedding: exact telemetry" `Quick
            test_overload_shedding_exact_telemetry;
          Alcotest.test_case "close during drain" `Quick test_close_during_drain;
        ] );
      ( "quota",
        [ Alcotest.test_case "per-tenant quotas over the wire" `Quick test_quota_over_net ] );
    ]
