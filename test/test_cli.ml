(* End-to-end tests of the command-line front end: run the real obda binary
   on generated ontology files and check its output. The test stanza
   declares a dependency on ../bin/obda.exe; dune runs tests with the test
   directory as the working directory. *)

(* Under `dune runtest` the working directory is the test stanza dir inside
   _build; under `dune exec` it is the workspace root. Try both. *)
let obda =
  let candidates =
    [ "../bin/obda.exe"; "_build/default/bin/obda.exe"; "bin/obda.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> "../bin/obda.exe"

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_cmd args =
  let out = Filename.temp_file "obda_out" ".txt" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" obda args out in
  let code = Sys.command cmd in
  let ic = open_in out in
  let len = in_channel_length ic in
  let output = really_input_string ic len in
  close_in ic;
  Sys.remove out;
  (code, output)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let example1_file () =
  let path = Filename.temp_file "ex1" ".tgd" in
  write_file path
    {|
      [R1] s(Y1,Y2,Y3), t(Y4) -> r(Y1,Y3).
      [R2] v(Y1,Y2), q(Y2) -> s(Y1,Y3,Y2).
      [R3] r(Y1,Y2) -> v(Y1,Y2).
      v(ann, db). q(db). t(foo).
      ans(X) :- r(X, Y).
    |};
  path

let test_classify () =
  let file = example1_file () in
  let code, out = run_cmd ("classify " ^ file) in
  Sys.remove file;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "swr yes" true (contains out "swr                yes");
  Alcotest.(check bool) "witness reported" true (contains out "FO-rewritable")

let test_answer () =
  let file = example1_file () in
  let code, out = run_cmd ("answer " ^ file) in
  Sys.remove file;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "finds ann" true (contains out "(ann)")

let test_rewrite_sql () =
  let file = example1_file () in
  let code, out = run_cmd ("rewrite --sql " ^ file) in
  Sys.remove file;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "union of three" true (contains out "UNION");
  Alcotest.(check bool) "select" true (contains out "SELECT DISTINCT")

let test_chase () =
  let file = example1_file () in
  let code, out = run_cmd ("chase --facts " ^ file) in
  Sys.remove file;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "terminated" true (contains out "terminated");
  Alcotest.(check bool) "derived r(ann,..)" true (contains out "r(ann")

let test_graph_dot () =
  let file = example1_file () in
  let code, out = run_cmd ("graph -k position " ^ file) in
  Sys.remove file;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "dot header" true (contains out "digraph");
  Alcotest.(check bool) "has the r[ ] node" true (contains out "r[ ]")

let test_check_inconsistent () =
  let path = Filename.temp_file "nc" ".tgd" in
  write_file path
    {|
      [u1] undergrad(X) -> student(X).
      [p1] prof(X) -> faculty(X).
      [disj] student(X), faculty(X) -> falsum.
      undergrad(ada). prof(ada).
    |};
  let code, out = run_cmd ("check " ^ path) in
  Sys.remove path;
  Alcotest.(check int) "exit 1 on inconsistency" 1 code;
  Alcotest.(check bool) "violation named" true (contains out "disj")

let test_approx () =
  let path = Filename.temp_file "approx" ".tgd" in
  write_file path
    {|
      [R1] t(Y1,Y2), r(Y3,Y4) -> s(Y1,Y3,Y2).
      [R2] s(Y1,Y1,Y2) -> r(Y2,Y3).
      t(a,b). r(u,w). s(k,k,b).
      q(X) :- r(X, Y).
    |};
  let code, out = run_cmd ("approx " ^ path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports removal" true (contains out "removed");
  Alcotest.(check bool) "certain answer u" true (contains out "certain  (u)")

let test_patterns () =
  let path = Filename.temp_file "pat" ".tgd" in
  write_file path
    {|
      [R1] t(Y1,Y2), r(Y3,Y4) -> s(Y1,Y3,Y2).
      [R2] s(Y1,Y1,Y2) -> r(Y2,Y3).
    |};
  let code, out = run_cmd ("patterns --max-cqs 500 " ^ path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "r(b,u) diverges" true (contains out "r(b,u)");
  Alcotest.(check bool) "some pattern terminates" true (contains out "terminates")

let test_parse_error_reporting () =
  let path = Filename.temp_file "broken" ".tgd" in
  write_file path "p(a) -> ;\n";
  let code, out = run_cmd ("classify " ^ path) in
  Sys.remove path;
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "parse error with location" true (contains out "parse error")

let test_data_csv () =
  let file = example1_file () in
  let csv = Filename.temp_file "facts" ".csv" in
  write_file csv "v,bob,ml\nq,ml\n";
  let code, out = run_cmd (Printf.sprintf "answer %s --data %s" file csv) in
  Sys.remove file;
  Sys.remove csv;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "csv fact used" true (contains out "(bob)")

(* `obda fuzz` must be bit-deterministic in (--seed, --cases): the nightly
   workflow relies on a failure being reproducible from the summary alone. *)
let test_fuzz_deterministic () =
  let code1, out1 = run_cmd "fuzz --seed 91 --cases 25" in
  let code2, out2 = run_cmd "fuzz --seed 91 --cases 25" in
  Alcotest.(check int) "exit 0" 0 code1;
  Alcotest.(check int) "same exit" code1 code2;
  Alcotest.(check string) "same report" out1 out2;
  Alcotest.(check bool) "per-invariant table present" true (contains out1 "subsumption");
  let code3, out3 = run_cmd "fuzz --seed 92 --cases 25 --json" in
  Alcotest.(check int) "json exit 0" 0 code3;
  Alcotest.(check bool) "json summary" true (contains out3 "\"per_invariant\"")

let () =
  if not (Sys.file_exists obda) then begin
    (* Defensive: the dune deps field guarantees the binary exists; make the
       failure readable if the layout ever changes. *)
    Printf.eprintf "cannot find %s from %s\n" obda (Sys.getcwd ());
    exit 1
  end;
  Alcotest.run "cli"
    [
      ( "obda",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "answer" `Quick test_answer;
          Alcotest.test_case "rewrite --sql" `Quick test_rewrite_sql;
          Alcotest.test_case "chase" `Quick test_chase;
          Alcotest.test_case "graph" `Quick test_graph_dot;
          Alcotest.test_case "check (inconsistent)" `Quick test_check_inconsistent;
          Alcotest.test_case "approx" `Quick test_approx;
          Alcotest.test_case "patterns" `Quick test_patterns;
          Alcotest.test_case "parse errors" `Quick test_parse_error_reporting;
          Alcotest.test_case "csv data" `Quick test_data_csv;
          Alcotest.test_case "fuzz deterministic" `Quick test_fuzz_deterministic;
        ] );
    ]
