(* The parallel evaluation engine: Pool unit tests, Relation partitioning
   unit tests, and the qcheck equivalence property — morsel-parallel
   evaluation must agree with sequential evaluation (answers and truncation
   flag) across worker counts (1, 2, 4 and the TGDLIB_DOMAINS-derived
   default), random partition counts, and BOTH engines: the compiled
   columnar path (default on sealed instances) and the boxed fallback
   forced via [~columnar:false]. *)

open Tgd_logic
open Tgd_db

let v = Term.var
let c = Term.const
let vc s = Value.const s
let atom p args = Atom.of_strings p args

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_submit_drain () =
  let pool = Tgd_exec.Pool.create ~workers:2 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 100 do
    match Tgd_exec.Pool.submit pool (fun () -> Atomic.incr hits) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "unbounded pool rejected a job"
  done;
  Tgd_exec.Pool.drain pool;
  Alcotest.(check int) "every job ran exactly once" 100 (Atomic.get hits);
  Tgd_exec.Pool.shutdown pool;
  (match Tgd_exec.Pool.submit pool (fun () -> ()) with
  | Error `Closed -> ()
  | Ok _ | Error (`Overloaded _) -> Alcotest.fail "closed pool accepted a job");
  (* Idempotent. *)
  Tgd_exec.Pool.shutdown pool

let test_pool_overload () =
  let pool = Tgd_exec.Pool.create ~workers:1 ~queue_bound:2 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  (match
     Tgd_exec.Pool.submit pool (fun () ->
         Atomic.set started true;
         while not (Atomic.get release) do
           Domain.cpu_relax ()
         done)
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "blocking job rejected");
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* The single worker is blocked: two jobs fill the queue, the third is
     shed. *)
  (match Tgd_exec.Pool.submit pool (fun () -> ()) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "queued job 1 rejected");
  (match Tgd_exec.Pool.submit pool (fun () -> ()) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "queued job 2 rejected");
  (match Tgd_exec.Pool.submit pool (fun () -> ()) with
  | Error (`Overloaded d) -> Alcotest.(check int) "depth at shed time" 2 d
  | Ok _ | Error `Closed -> Alcotest.fail "expected overload shed");
  Atomic.set release true;
  Tgd_exec.Pool.drain pool;
  Tgd_exec.Pool.shutdown pool

let test_pool_run_morsels () =
  let pool = Tgd_exec.Pool.create ~workers:3 () in
  let n = 100 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Tgd_exec.Pool.run_morsels pool ~n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "morsel %d ran once" i) 1 (Atomic.get h))
    hits;
  (* A raising morsel is re-raised in the caller after the batch settles. *)
  (match Tgd_exec.Pool.run_morsels pool ~n:20 (fun i -> if i = 7 then failwith "boom") with
  | () -> Alcotest.fail "expected the morsel exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "first failure wins" "boom" msg);
  Tgd_exec.Pool.shutdown pool;
  (* A closed pool degrades to caller-only execution but still completes. *)
  let count = Atomic.make 0 in
  Tgd_exec.Pool.run_morsels pool ~n:10 (fun _ -> Atomic.incr count);
  Alcotest.(check int) "batch completes on a closed pool" 10 (Atomic.get count)

(* Concurrent submitters racing drain and shutdown: every admitted job
   runs exactly once, rejected jobs never run, nothing deadlocks. *)
let test_pool_concurrent_submit_drain () =
  let pool = Tgd_exec.Pool.create ~workers:2 ~queue_bound:8 () in
  let executed = Atomic.make 0 in
  let admitted = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let submitters =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 200 do
              match Tgd_exec.Pool.submit pool (fun () -> Atomic.incr executed) with
              | Ok _ -> Atomic.incr admitted
              | Error (`Overloaded _) -> Atomic.incr rejected
              | Error `Closed -> Alcotest.fail "pool closed while open"
            done)
          ())
  in
  (* Drain races the submitters: it must return (momentary emptiness is
     enough) and never lose work. *)
  Tgd_exec.Pool.drain pool;
  List.iter Thread.join submitters;
  Tgd_exec.Pool.drain pool;
  Alcotest.(check int) "admitted jobs ran exactly once" (Atomic.get admitted)
    (Atomic.get executed);
  Alcotest.(check int) "every submission accounted for" 800
    (Atomic.get admitted + Atomic.get rejected);
  Tgd_exec.Pool.shutdown pool

(* Shutdown while jobs are queued and a drainer is blocked: admitted work
   still completes, the drainer returns, late submitters see [`Closed]. *)
let test_pool_shutdown_during_drain () =
  let pool = Tgd_exec.Pool.create ~workers:1 () in
  let executed = Atomic.make 0 in
  for _ = 1 to 50 do
    match Tgd_exec.Pool.submit pool (fun () -> Atomic.incr executed) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "unbounded pool rejected a job"
  done;
  let drainer = Thread.create (fun () -> Tgd_exec.Pool.drain pool) () in
  Tgd_exec.Pool.shutdown pool;
  Thread.join drainer;
  Alcotest.(check int) "admitted jobs survived shutdown" 50 (Atomic.get executed);
  (match Tgd_exec.Pool.submit pool (fun () -> ()) with
  | Error `Closed -> ()
  | Ok _ | Error (`Overloaded _) -> Alcotest.fail "closed pool accepted a job")

(* The core-count clamp: requesting absurd worker counts spawns at most
   one domain per core (observable via [size]), without changing queue
   semantics; TGDLIB_OVERSUBSCRIBE=1 is the explicit escape hatch. *)
let test_pool_core_clamp () =
  let cores = max 1 (Domain.recommended_domain_count ()) in
  let pool = Tgd_exec.Pool.create ~workers:(cores + 13) () in
  Alcotest.(check int) "workers clamped to cores" cores (Tgd_exec.Pool.size pool);
  let hits = Atomic.make 0 in
  for _ = 1 to 20 do
    ignore (Tgd_exec.Pool.submit pool (fun () -> Atomic.incr hits))
  done;
  Tgd_exec.Pool.drain pool;
  Alcotest.(check int) "clamped pool is work-conserving" 20 (Atomic.get hits);
  Tgd_exec.Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Relation partitioning *)

let test_partition_covers_rows () =
  let r = Relation.create ~arity:2 in
  for i = 0 to 99 do
    ignore (Relation.insert r [| vc (string_of_int i); vc (string_of_int (i mod 7)) |])
  done;
  Alcotest.(check bool) "no partition before seal" true (Relation.partition r = None);
  Relation.seal ~partitions:4 r;
  match Relation.partition r with
  | None -> Alcotest.fail "seal ~partitions built no partition"
  | Some (pos, shards) ->
    Alcotest.(check int) "partition on the most-distinct column" 0 pos;
    Alcotest.(check int) "requested shard count" 4 (Array.length shards);
    let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 shards in
    Alcotest.(check int) "shards cover every row exactly once" (Relation.cardinality r) total;
    Array.iter (Array.iter (fun t -> Alcotest.(check bool) "shard row is a row" true (Relation.mem r t))) shards

let test_partition_invalidated_by_insert () =
  let r = Relation.create ~arity:1 in
  for i = 0 to 9 do
    ignore (Relation.insert r [| vc (string_of_int i) |])
  done;
  Relation.seal ~partitions:2 r;
  Alcotest.(check bool) "partitioned after seal" true (Relation.partition r <> None);
  ignore (Relation.insert r [| vc "fresh" |]);
  Alcotest.(check bool) "insert discards the stale partition" true (Relation.partition r = None);
  (* Re-sealing rebuilds it over the grown relation. *)
  Relation.seal ~partitions:2 r;
  match Relation.partition r with
  | None -> Alcotest.fail "re-seal built no partition"
  | Some (_, shards) ->
    Alcotest.(check int) "rebuilt shards cover the new row too" 11
      (Array.fold_left (fun acc s -> acc + Array.length s) 0 shards)

(* ------------------------------------------------------------------ *)
(* Deterministic end-to-end equivalence on a non-trivial join *)

let graph_instance n =
  let inst = Instance.create () in
  for i = 0 to n - 1 do
    ignore
      (Instance.add_fact inst (Symbol.intern "r")
         [| vc (Printf.sprintf "n%d" i); vc (Printf.sprintf "n%d" (i * 7 mod n)) |]);
    if i mod 3 = 0 then
      ignore (Instance.add_fact inst (Symbol.intern "s") [| vc (Printf.sprintf "n%d" i) |])
  done;
  inst

let join_query =
  Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y" ] ]

let test_par_eval_join_equivalence () =
  let inst = graph_instance 2_000 in
  let reference = Eval.ucq inst [ join_query ] in
  Alcotest.(check bool) "the join has answers" true (reference <> []);
  List.iter
    (fun (workers, partitions) ->
      Instance.seal ~partitions inst;
      List.iter
        (fun columnar ->
          let par = Par_eval.ucq ~workers ~min_tuples:1 ~columnar inst [ join_query ] in
          Alcotest.(check bool)
            (Printf.sprintf "workers=%d partitions=%d columnar=%b equals sequential" workers
               partitions columnar)
            true
            (List.length par = List.length reference && List.for_all2 Tuple.equal par reference))
        [ true; false ])
    [ (1, 1); (2, 2); (2, 8); (4, 4); (4, 16); (Tgd_exec.Pool.default_workers (), 5) ]

let test_par_eval_shared_pool () =
  let inst = graph_instance 1_000 in
  Instance.seal ~partitions:8 inst;
  let reference = Eval.ucq inst [ join_query ] in
  let pool = Tgd_exec.Pool.create ~workers:4 () in
  Fun.protect ~finally:(fun () -> Tgd_exec.Pool.shutdown pool) @@ fun () ->
  for _ = 1 to 5 do
    let par = Par_eval.ucq ~pool ~min_tuples:1 inst [ join_query ] in
    Alcotest.(check bool) "pool-dispatched run equals sequential" true
      (List.length par = List.length reference && List.for_all2 Tuple.equal par reference)
  done

(* Truncation semantics: a one-step eval budget trips both engines; an
   unlimited governor trips neither and the answers agree. *)
let test_par_eval_truncation_flag () =
  let inst = graph_instance 1_000 in
  Instance.seal ~partitions:4 inst;
  let tiny = { Tgd_exec.Budget.unlimited with Tgd_exec.Budget.eval_steps = Some 1 } in
  let gov_seq = Tgd_exec.Governor.create ~budget:tiny () in
  ignore (Eval.ucq ~gov:gov_seq inst [ join_query ]);
  List.iter
    (fun columnar ->
      let gov_par = Tgd_exec.Governor.create ~budget:tiny () in
      ignore (Par_eval.ucq ~gov:gov_par ~workers:4 ~min_tuples:1 ~columnar inst [ join_query ]);
      Alcotest.(check bool)
        (Printf.sprintf "parallel (columnar=%b) trips the 1-step budget" columnar)
        true
        (Tgd_exec.Governor.stopped gov_par <> None))
    [ true; false ];
  Alcotest.(check bool) "sequential trips the 1-step budget" true
    (Tgd_exec.Governor.stopped gov_seq <> None);
  let gov_free = Tgd_exec.Governor.create () in
  let par = Par_eval.ucq ~gov:gov_free ~workers:4 ~min_tuples:1 inst [ join_query ] in
  Alcotest.(check bool) "ungoverned parallel run completes" true
    (Tgd_exec.Governor.stopped gov_free = None);
  let reference = Eval.ucq inst [ join_query ] in
  Alcotest.(check bool) "ungoverned answers equal sequential" true
    (List.length par = List.length reference && List.for_all2 Tuple.equal par reference)

(* ------------------------------------------------------------------ *)
(* qcheck: parallel == sequential over random instances, queries,
   worker counts and partition counts *)

let signature = [ ("p", 2); ("q1", 1); ("r", 3) ]

let gen_pred = QCheck.Gen.oneofl signature
let gen_var = QCheck.Gen.map (fun i -> v (Printf.sprintf "X%d" i)) (QCheck.Gen.int_bound 4)
let gen_const = QCheck.Gen.map (fun i -> c (Printf.sprintf "c%d" i)) (QCheck.Gen.int_bound 9)
let gen_term = QCheck.Gen.frequency [ (3, gen_var); (1, gen_const) ]

let gen_atom =
  QCheck.Gen.(
    gen_pred >>= fun (name, arity) ->
    list_repeat arity gen_term >>= fun args -> return (atom name args))

let gen_ground_atom =
  QCheck.Gen.(
    gen_pred >>= fun (name, arity) ->
    list_repeat arity gen_const >>= fun args -> return (atom name args))

let gen_cq =
  QCheck.Gen.(
    int_range 1 3 >>= fun n ->
    list_repeat n gen_atom >>= fun body ->
    let vars =
      Symbol.Set.elements
        (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
    in
    (if vars = [] then return []
     else
       int_bound (min 2 (List.length vars - 1)) >>= fun k ->
       return (List.filteri (fun i _ -> i <= k) vars))
    >>= fun answer ->
    return (Cq.make ~name:"q" ~answer:(List.map (fun x -> Term.Var x) answer) ~body))

let gen_case =
  QCheck.Gen.(
    int_range 40 400 >>= fun nfacts ->
    list_repeat nfacts gen_ground_atom >>= fun facts ->
    int_range 1 2 >>= fun ndisj ->
    list_repeat ndisj gen_cq >>= fun ucq ->
    int_range 1 8 >>= fun partitions -> return (facts, ucq, partitions))

let arb_case =
  QCheck.make
    ~print:(fun (facts, ucq, partitions) ->
      Printf.sprintf "%d facts, %d partitions, ucq %s" (List.length facts) partitions
        (String.concat " | " (List.map Cq.to_string ucq)))
    gen_case

let prop_par_eval_equals_seq =
  QCheck.Test.make ~name:"parallel evaluation equals sequential (answers)" ~count:60 arb_case
    (fun (facts, ucq, partitions) ->
      let inst = Instance.of_atoms facts in
      let reference = Eval.ucq inst ucq in
      Instance.seal ~partitions inst;
      List.for_all
        (fun columnar ->
          List.for_all
            (fun workers ->
              let par = Par_eval.ucq ~workers ~min_tuples:1 ~columnar inst ucq in
              List.length par = List.length reference
              && List.for_all2 Tuple.equal par reference)
            [ 1; 2; 4; Tgd_exec.Pool.default_workers () ])
        [ true; false ])

let prop_par_eval_truncates_like_seq =
  QCheck.Test.make ~name:"parallel evaluation truncates like sequential (1-step budget)"
    ~count:30 arb_case (fun (facts, ucq, partitions) ->
      let inst = Instance.of_atoms facts in
      Instance.seal ~partitions inst;
      let tiny = { Tgd_exec.Budget.unlimited with Tgd_exec.Budget.eval_steps = Some 1 } in
      let gov_seq = Tgd_exec.Governor.create ~budget:tiny () in
      ignore (Eval.ucq ~gov:gov_seq inst ucq);
      let seq_stopped = Tgd_exec.Governor.stopped gov_seq <> None in
      List.for_all
        (fun columnar ->
          let gov_par = Tgd_exec.Governor.create ~budget:tiny () in
          ignore (Par_eval.ucq ~gov:gov_par ~workers:4 ~min_tuples:1 ~columnar inst ucq);
          seq_stopped = (Tgd_exec.Governor.stopped gov_par <> None))
        [ true; false ])

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "par_eval"
    [
      ( "pool",
        [
          Alcotest.test_case "submit / drain / shutdown" `Quick test_pool_submit_drain;
          Alcotest.test_case "overload shedding" `Quick test_pool_overload;
          Alcotest.test_case "run_morsels" `Quick test_pool_run_morsels;
          Alcotest.test_case "concurrent submit vs drain" `Quick
            test_pool_concurrent_submit_drain;
          Alcotest.test_case "shutdown during drain" `Quick test_pool_shutdown_during_drain;
          Alcotest.test_case "worker clamp to core count" `Quick test_pool_core_clamp;
        ] );
      ( "partition",
        [
          Alcotest.test_case "shards cover the rows" `Quick test_partition_covers_rows;
          Alcotest.test_case "insert invalidates" `Quick test_partition_invalidated_by_insert;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "join across worker/partition grid" `Quick
            test_par_eval_join_equivalence;
          Alcotest.test_case "shared pool reuse" `Quick test_par_eval_shared_pool;
          Alcotest.test_case "truncation flag" `Quick test_par_eval_truncation_flag;
        ] );
      ( "properties",
        List.map to_alcotest [ prop_par_eval_equals_seq; prop_par_eval_truncates_like_seq ] );
    ]
