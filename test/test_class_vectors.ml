(* Table-driven classifier suite over the curated ontologies in
   examples/ontologies/. Each entry pins the FULL membership vector, so any
   classifier change that moves a boundary (a false positive into sticky, a
   lost linear witness, ...) fails with the exact field named. The vectors
   were hand-checked against the definitions in the paper (Sections 3-6). *)

module C = Tgd_core.Classifier

type vector = {
  simple : bool;
  datalog : bool;
  linear : bool;
  guarded : bool;
  multilinear : bool;
  sticky : bool;
  sticky_join : bool;
  weakly_acyclic : bool;
  domain_restricted : bool;
  acyclic_grd : bool;
  swr : bool;
  wr : bool;
  fo_rewritable : bool;  (** some implemented witness class applies *)
}

let expected : (string * vector) list =
  [
    ( "linear_hierarchy.tgd",
      (* single-atom bodies, no repeated variables: the DL-Lite sweet spot *)
      { simple = true; datalog = false; linear = true; guarded = true; multilinear = true;
        sticky = true; sticky_join = true; weakly_acyclic = true; domain_restricted = false;
        acyclic_grd = true; swr = true; wr = true; fo_rewritable = true } );
    ( "multilinear_roles.tgd",
      (* two-atom bodies where every atom is a guard: multilinear, not linear *)
      { simple = true; datalog = false; linear = false; guarded = true; multilinear = true;
        sticky = true; sticky_join = true; weakly_acyclic = true; domain_restricted = true;
        acyclic_grd = true; swr = true; wr = true; fo_rewritable = true } );
    ( "datalog_closure.tgd",
      (* recursive transitive closure: terminating chase, NOT FO-rewritable *)
      { simple = true; datalog = true; linear = false; guarded = false; multilinear = false;
        sticky = false; sticky_join = false; weakly_acyclic = true; domain_restricted = false;
        acyclic_grd = false; swr = false; wr = false; fo_rewritable = false } );
    ( "weakly_acyclic_witness.tgd",
      (* an existential that never feeds back: weakly acyclic AND linear *)
      { simple = true; datalog = false; linear = true; guarded = true; multilinear = true;
        sticky = true; sticky_join = true; weakly_acyclic = true; domain_restricted = false;
        acyclic_grd = true; swr = true; wr = true; fo_rewritable = true } );
    ( "infinite_chase_linear.tgd",
      (* every person has a parent: infinite chase, still rewritable *)
      { simple = true; datalog = false; linear = true; guarded = true; multilinear = true;
        sticky = true; sticky_join = true; weakly_acyclic = false; domain_restricted = false;
        acyclic_grd = false; swr = true; wr = true; fo_rewritable = true } );
    ( "sticky_selection.tgd",
      (* unmarked join variable: sticky without being guarded or linear *)
      { simple = true; datalog = true; linear = false; guarded = false; multilinear = false;
        sticky = true; sticky_join = true; weakly_acyclic = true; domain_restricted = false;
        acyclic_grd = true; swr = true; wr = true; fo_rewritable = true } );
    ( "guarded_not_sticky.tgd",
      (* a guard exists in every body, but the marked join variable recurs *)
      { simple = true; datalog = false; linear = false; guarded = true; multilinear = false;
        sticky = false; sticky_join = false; weakly_acyclic = true; domain_restricted = false;
        acyclic_grd = true; swr = true; wr = true; fo_rewritable = true } );
    ( "paper_example1.tgd",
      (* the paper's Example 1: sticky, neither linear nor guarded *)
      { simple = true; datalog = false; linear = false; guarded = false; multilinear = false;
        sticky = true; sticky_join = true; weakly_acyclic = true; domain_restricted = false;
        acyclic_grd = false; swr = true; wr = true; fo_rewritable = true } );
    ( "paper_example3.tgd",
      (* the paper's Example 3: not simple, not WA, WR via the acyclic GRD *)
      { simple = false; datalog = false; linear = false; guarded = true; multilinear = false;
        sticky = false; sticky_join = false; weakly_acyclic = false; domain_restricted = false;
        acyclic_grd = true; swr = false; wr = true; fo_rewritable = true } );
  ]

let dir = Filename.concat (Filename.concat ".." "examples") "ontologies"

let load file =
  let path = Filename.concat dir file in
  match Tgd_parser.Parser.parse_file path with
  | Error e -> Alcotest.fail (Format.asprintf "%s: parse error: %a" file Tgd_parser.Parser.pp_error e)
  | Ok doc -> (
    match Tgd_parser.Parser.program_of_document ~name:file doc with
    | Ok p -> p
    | Error msg -> Alcotest.fail (file ^ ": " ^ msg))

let check_vector file want () =
  let r = C.classify (load file) in
  let field name got expect =
    Alcotest.(check bool) (file ^ ": " ^ name) expect got
  in
  field "simple" r.C.simple want.simple;
  field "datalog" r.C.datalog want.datalog;
  field "linear" r.C.linear want.linear;
  field "guarded" r.C.guarded want.guarded;
  field "multilinear" r.C.multilinear want.multilinear;
  field "sticky" r.C.sticky want.sticky;
  field "sticky-join" r.C.sticky_join want.sticky_join;
  field "weakly-acyclic" r.C.weakly_acyclic want.weakly_acyclic;
  field "domain-restricted" r.C.domain_restricted want.domain_restricted;
  field "acyclic-grd" r.C.acyclic_grd want.acyclic_grd;
  field "swr" r.C.swr want.swr;
  field "wr" r.C.wr want.wr;
  field "wr analysis completed" r.C.wr_established true;
  field "fo-rewritable witness" (C.fo_rewritable_witness r <> None) want.fo_rewritable

(* Every curated ontology, packaged as a conformance case with a canonical
   single-atom query, must pass the subsumption invariant — the same lattice
   the fuzzer checks on random inputs holds on the curated boundary set. *)
let check_subsumption_invariant file () =
  let p = load file in
  let open Tgd_logic in
  let pred, arity = List.hd (Program.predicates p) in
  let query =
    Cq.make ~name:"q"
      ~answer:[ Term.var "X0" ]
      ~body:[ Atom.make pred (List.init arity (fun i -> Term.var (Printf.sprintf "X%d" (min i 1)))) ]
  in
  let case = Tgd_conformance.Case.make ~label:file ~program:p ~facts:[] query in
  let inv = Option.get (Tgd_conformance.Invariant.find "subsumption") in
  match inv.Tgd_conformance.Invariant.check Tgd_conformance.Oracle.real case with
  | Tgd_conformance.Invariant.Pass -> ()
  | o ->
    Alcotest.fail (file ^ ": " ^ Tgd_conformance.Invariant.outcome_to_string o)

let () =
  Alcotest.run "class_vectors"
    [
      ( "vectors",
        List.map
          (fun (file, want) -> Alcotest.test_case file `Quick (check_vector file want))
          expected );
      ( "subsumption",
        List.map
          (fun (file, _) -> Alcotest.test_case file `Quick (check_subsumption_invariant file))
          expected );
    ]
