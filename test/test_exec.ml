(* Property tests for the governed execution layer (lib/exec):

   - Budget specs parse / print / round-trip, with aliases and errors.
   - The governor latches its first stop reason; charge stops at the limit
     (value >= limit), gauge stops only beyond it (value > limit);
     cancellation and deadlines trip from plain [live] polling.
   - Budget-exhausted chase runs are deterministic for a fixed input.
   - Truncation never corrupts state: rerunning from scratch after a
     truncated run gives exactly the unbudgeted result.
   - Truncation diagnostics are monotone in the budget.
   - Governed evaluation returns a subset of the full answers. *)

open Tgd_logic
open Tgd_exec

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args

(* p(X) -> r(X,Y); r(X,Y) -> p(Y): diverges under the oblivious and the
   restricted chase alike. *)
let divergent =
  Program.make_exn
    [
      Tgd.make ~name:"r1" ~body:[ atom "p" [ v "X" ] ] ~head:[ atom "r" [ v "X"; v "Y" ] ];
      Tgd.make ~name:"r2" ~body:[ atom "r" [ v "X"; v "Y" ] ] ~head:[ atom "p" [ v "Y" ] ];
    ]

let divergent_start () = Tgd_db.Instance.of_atoms [ atom "p" [ c "a" ] ]

(* A terminating program with existentials, so the no-corruption test
   exercises null generation too. *)
let terminating =
  Program.make_exn
    [
      Tgd.make ~name:"t1" ~body:[ atom "person" [ v "X" ] ]
        ~head:[ atom "hasid" [ v "X"; v "I" ] ];
      Tgd.make ~name:"t2" ~body:[ atom "hasid" [ v "X"; v "I" ] ]
        ~head:[ atom "registered" [ v "X" ] ];
    ]

let terminating_start () =
  Tgd_db.Instance.of_atoms [ atom "person" [ c "a" ]; atom "person" [ c "b" ] ]

let sorted_facts inst =
  List.sort compare
    (List.map
       (fun (pred, t) -> (Symbol.name pred, Array.to_list t))
       (Tgd_db.Instance.facts inst))

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_budget_roundtrip () =
  let spec = "chase.rounds=100,rewrite.cqs=5000,deadline=2.5" in
  match Budget.of_string spec with
  | Error e -> Alcotest.fail e
  | Ok b ->
    Alcotest.(check (option int)) "rounds" (Some 100) b.Budget.chase_rounds;
    Alcotest.(check (option int)) "cqs" (Some 5000) b.Budget.rewrite_cqs;
    Alcotest.(check bool) "deadline" true (b.Budget.deadline_s = Some 2.5);
    (match Budget.of_string (Budget.to_string b) with
    | Ok b' -> Alcotest.(check bool) "round-trip" true (b = b')
    | Error e -> Alcotest.fail e)

let test_budget_aliases () =
  match (Budget.of_string "rounds=7,facts=9,cqs=3", Budget.of_string "chase.rounds=7") with
  | Ok b, Ok b' ->
    Alcotest.(check (option int)) "rounds alias" (Some 7) b.Budget.chase_rounds;
    Alcotest.(check (option int)) "facts alias" (Some 9) b.Budget.chase_facts;
    Alcotest.(check (option int)) "cqs alias" (Some 3) b.Budget.rewrite_cqs;
    Alcotest.(check (option int)) "canonical" (Some 7) b'.Budget.chase_rounds
  | _ -> Alcotest.fail "aliases should parse"

let test_budget_errors () =
  let bad spec =
    match Budget.of_string spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
  in
  bad "bogus=3";
  bad "rounds=abc";
  bad "deadline=soon";
  bad "rounds"

let test_budget_limit_lookup () =
  match Budget.of_string "chase.triggers=42" with
  | Error e -> Alcotest.fail e
  | Ok b ->
    Alcotest.(check (option int)) "limit" (Some 42) (Budget.limit b Budget.key_chase_triggers);
    Alcotest.(check (option int)) "other key" None (Budget.limit b Budget.key_chase_rounds);
    Alcotest.(check (option int)) "unknown key" None (Budget.limit b "no.such.counter")

(* ------------------------------------------------------------------ *)
(* Governor *)

let test_governor_charge_latches () =
  let b = { Budget.unlimited with Budget.containment_checks = Some 5 } in
  let g = Governor.create ~budget:b () in
  for _ = 1 to 4 do
    Governor.charge g Budget.key_containment_checks
  done;
  Alcotest.(check bool) "live below limit" true (Governor.live g);
  Governor.charge g Budget.key_containment_checks;
  Alcotest.(check bool) "stopped at limit" false (Governor.live g);
  (match Governor.stopped g with
  | Some (Governor.Limit { counter; limit }) ->
    Alcotest.(check string) "counter" Budget.key_containment_checks counter;
    Alcotest.(check int) "limit" 5 limit
  | _ -> Alcotest.fail "expected Limit stop reason");
  (* First reason wins: a later stop must not overwrite it. *)
  Governor.stop g Governor.Cancelled;
  match Governor.stopped g with
  | Some (Governor.Limit _) -> ()
  | _ -> Alcotest.fail "stop reason was overwritten"

let test_governor_gauge_boundary () =
  let b = { Budget.unlimited with Budget.chase_facts = Some 10 } in
  let g = Governor.create ~budget:b () in
  Governor.gauge g Budget.key_chase_facts 10;
  Alcotest.(check bool) "at limit is within budget" true (Governor.live g);
  Governor.gauge g Budget.key_chase_facts 11;
  Alcotest.(check bool) "beyond limit stops" false (Governor.live g)

let test_governor_cancellation () =
  let flag = ref false in
  let g = Governor.create ~cancel:(fun () -> !flag) () in
  for _ = 1 to 200 do
    ignore (Governor.live g)
  done;
  Alcotest.(check bool) "no spurious cancel" true (Governor.live g);
  flag := true;
  (* live polls the callback at a small stride; a loop head reaches it fast. *)
  let tripped = ref false in
  for _ = 1 to 200 do
    if not (Governor.live g) then tripped := true
  done;
  Alcotest.(check bool) "cancel tripped" true !tripped;
  match Governor.stopped g with
  | Some Governor.Cancelled -> ()
  | _ -> Alcotest.fail "expected Cancelled"

let test_governor_deadline () =
  let b = { Budget.unlimited with Budget.deadline_s = Some 0.02 } in
  let g = Governor.create ~budget:b () in
  Unix.sleepf 0.05;
  let tripped = ref false in
  for _ = 1 to 200 do
    if not (Governor.live g) then tripped := true
  done;
  Alcotest.(check bool) "deadline tripped" true !tripped;
  match Governor.stopped g with
  | Some (Governor.Deadline s) -> Alcotest.(check bool) "deadline value" true (s = 0.02)
  | _ -> Alcotest.fail "expected Deadline"

let test_diagnostics_snapshot () =
  let b = { Budget.unlimited with Budget.chase_triggers = Some 3 } in
  let g = Governor.create ~budget:b () in
  Alcotest.(check bool) "no diagnostics while live" true (Governor.diagnostics g = None);
  Governor.charge ~n:3 g Budget.key_chase_triggers;
  match Governor.diagnostics g with
  | None -> Alcotest.fail "expected diagnostics after stop"
  | Some d ->
    Alcotest.(check int) "charged counter in snapshot" 3
      (List.assoc Budget.key_chase_triggers d.Governor.counters);
    Alcotest.(check bool) "summary non-empty" true
      (String.length (Governor.diag_summary d) > 0)

let test_report_json_shape () =
  let g = Governor.unlimited () in
  Governor.charge ~n:7 g "chase.rounds";
  Governor.gauge g "chase.facts" 12;
  let json = Governor.report_json ~run:"shape \"quoted\"" g in
  let has sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length json && (String.sub json i n = sub || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true (go 0)
  in
  has "\"outcome\": \"complete\"";
  has "\"chase.rounds\": 7";
  has "\"chase.facts\": 12";
  has "\\\"quoted\\\""

(* ------------------------------------------------------------------ *)
(* Engine-level properties *)

let truncated_run budget_triggers =
  let b = { Budget.unlimited with Budget.chase_triggers = Some budget_triggers } in
  let g = Governor.create ~budget:b () in
  let inst = divergent_start () in
  let stats = Tgd_chase.Chase.run ~gov:g divergent inst in
  (stats, sorted_facts inst, Governor.diagnostics g)

let test_truncation_deterministic () =
  let s1, f1, d1 = truncated_run 50 in
  let s2, f2, d2 = truncated_run 50 in
  Alcotest.(check int) "rounds" s1.Tgd_chase.Chase.rounds s2.Tgd_chase.Chase.rounds;
  Alcotest.(check int) "new facts" s1.Tgd_chase.Chase.new_facts s2.Tgd_chase.Chase.new_facts;
  Alcotest.(check int) "triggers" s1.Tgd_chase.Chase.triggers_fired
    s2.Tgd_chase.Chase.triggers_fired;
  Alcotest.(check bool) "instances identical" true (f1 = f2);
  match (d1, d2) with
  | Some d1, Some d2 ->
    Alcotest.(check bool) "same stop reason" true (d1.Governor.reason = d2.Governor.reason);
    Alcotest.(check bool) "same counters" true (d1.Governor.counters = d2.Governor.counters)
  | _ -> Alcotest.fail "both runs should be truncated"

let test_truncation_no_corruption () =
  (* Reference: the unbudgeted chase, before any truncated run happened. *)
  let reference = terminating_start () in
  let r = Tgd_chase.Chase.run terminating reference in
  Alcotest.(check bool) "reference terminates" true (r.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated);
  (* A truncated run in between... *)
  let b = { Budget.unlimited with Budget.chase_triggers = Some 1 } in
  let g = Governor.create ~budget:b () in
  let truncated = terminating_start () in
  let t = Tgd_chase.Chase.run ~gov:g terminating truncated in
  (match t.Tgd_chase.Chase.outcome with
  | Tgd_chase.Chase.Truncated _ -> ()
  | Tgd_chase.Chase.Terminated -> Alcotest.fail "expected truncation under triggers=1");
  (* ... must not change what a fresh unbudgeted run computes. *)
  let rerun = terminating_start () in
  let r2 = Tgd_chase.Chase.run terminating rerun in
  Alcotest.(check bool) "rerun terminates" true (r2.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated);
  Alcotest.(check bool) "rerun equals reference (incl. null labels)" true
    (sorted_facts reference = sorted_facts rerun)

let test_diagnostics_monotone () =
  let runs = List.map (fun t -> (t, truncated_run t)) [ 20; 40; 80 ] in
  List.iter
    (fun (t, (stats, _, d)) ->
      Alcotest.(check bool)
        (Printf.sprintf "triggers within budget %d" t)
        true
        (stats.Tgd_chase.Chase.triggers_fired <= t);
      match d with
      | None -> Alcotest.fail "expected truncation"
      | Some d ->
        Alcotest.(check int)
          (Printf.sprintf "diagnosed triggers at budget %d" t)
          stats.Tgd_chase.Chase.triggers_fired
          (List.assoc Budget.key_chase_triggers d.Governor.counters))
    runs;
  let triggers = List.map (fun (_, (s, _, _)) -> s.Tgd_chase.Chase.triggers_fired) runs in
  let facts = List.map (fun (_, (s, _, _)) -> s.Tgd_chase.Chase.new_facts) runs in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "triggers monotone in budget" true (nondecreasing triggers);
  Alcotest.(check bool) "facts monotone in budget" true (nondecreasing facts)

let test_governed_eval_subset () =
  let facts =
    List.concat_map
      (fun i ->
        [
          atom "e" [ c (Printf.sprintf "a%d" i); c (Printf.sprintf "b%d" i) ];
          atom "e" [ c (Printf.sprintf "b%d" i); c (Printf.sprintf "c%d" i) ];
        ])
      (List.init 20 Fun.id)
  in
  let inst = Tgd_db.Instance.of_atoms facts in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X"; v "Z" ]
      ~body:[ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ]
  in
  let full = Tgd_db.Eval.cq inst q in
  Alcotest.(check int) "full join size" 20 (List.length full);
  let b = { Budget.unlimited with Budget.eval_steps = Some 10 } in
  let g = Governor.create ~budget:b () in
  let partial = Tgd_db.Eval.cq ~gov:g inst q in
  Alcotest.(check bool) "eval stopped" true (Governor.stopped g <> None);
  Alcotest.(check bool) "partial is smaller" true (List.length partial < List.length full);
  Alcotest.(check bool) "partial subset of full" true
    (List.for_all (fun t -> List.exists (Tgd_db.Tuple.equal t) full) partial)

let () =
  Alcotest.run "exec"
    [
      ( "budget",
        [
          Alcotest.test_case "round-trip" `Quick test_budget_roundtrip;
          Alcotest.test_case "aliases" `Quick test_budget_aliases;
          Alcotest.test_case "errors" `Quick test_budget_errors;
          Alcotest.test_case "limit lookup" `Quick test_budget_limit_lookup;
        ] );
      ( "governor",
        [
          Alcotest.test_case "charge latches first reason" `Quick test_governor_charge_latches;
          Alcotest.test_case "gauge boundary" `Quick test_governor_gauge_boundary;
          Alcotest.test_case "cancellation" `Quick test_governor_cancellation;
          Alcotest.test_case "deadline" `Quick test_governor_deadline;
          Alcotest.test_case "diagnostics snapshot" `Quick test_diagnostics_snapshot;
          Alcotest.test_case "report json shape" `Quick test_report_json_shape;
        ] );
      ( "engine",
        [
          Alcotest.test_case "truncation deterministic" `Quick test_truncation_deterministic;
          Alcotest.test_case "truncation no corruption" `Quick test_truncation_no_corruption;
          Alcotest.test_case "diagnostics monotone" `Quick test_diagnostics_monotone;
          Alcotest.test_case "governed eval subset" `Quick test_governed_eval_subset;
        ] );
    ]
