(* Unit tests for the rewriting engine: piece unifiers and UCQ rewriting. *)

open Tgd_logic
open Tgd_rewrite

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args

let outcome_is_complete = function Rewrite.Complete -> true | Rewrite.Truncated _ -> false

(* ------------------------------------------------------------------ *)
(* Piece unifiers *)

let test_piece_plain () =
  (* q(X) :- person(X) against member_person: one unifier. *)
  let rule =
    Tgd.make ~name:"member_person" ~body:[ atom "member" [ v "P"; v "M" ] ]
      ~head:[ atom "person" [ v "M" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  Alcotest.(check int) "one piece unifier" 1 (List.length (Piece.all q rule))

let test_piece_blocks_answer_var () =
  (* Existential head variable cannot unify with an answer variable. *)
  let rule =
    Tgd.make ~name:"has_member" ~body:[ atom "project" [ v "P" ] ]
      ~head:[ atom "member" [ v "P"; v "M" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ] ~body:[ atom "member" [ v "X"; v "Y" ] ] in
  Alcotest.(check int) "blocked by answer var" 0 (List.length (Piece.all q rule));
  (* With the second position existential in the query, it works. *)
  let q' = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "member" [ v "X"; v "Y" ] ] in
  Alcotest.(check int) "allowed on existential var" 1 (List.length (Piece.all q' rule))

let test_piece_blocks_constant () =
  let rule =
    Tgd.make ~name:"has_member" ~body:[ atom "project" [ v "P" ] ]
      ~head:[ atom "member" [ v "P"; v "M" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "member" [ v "X"; c "alan" ] ] in
  Alcotest.(check int) "blocked by constant" 0 (List.length (Piece.all q rule))

let test_piece_blocks_frontier_merge () =
  (* Example 3's key blocking: head t(Y3,Y1,Y1) vs query atom t(X,X,W):
     the class of Y3 absorbs the frontier variable Y1 via X. *)
  let rule =
    Tgd.make ~name:"R1" ~body:[ atom "r" [ v "Y1"; v "Y2" ] ]
      ~head:[ atom "t" [ v "Y3"; v "Y1"; v "Y1" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "t" [ v "X"; v "X"; v "W" ] ] in
  Alcotest.(check int) "frontier absorbed" 0 (List.length (Piece.all q rule));
  (* t(U,X,X) with distinct U is fine. *)
  let q' = Cq.make ~name:"q" ~answer:[] ~body:[ atom "t" [ v "U"; v "X"; v "X" ] ] in
  Alcotest.(check int) "distinct existential position ok" 1 (List.length (Piece.all q' rule))

let test_piece_grows_to_shared_atoms () =
  (* The existential variable M is shared between two atoms; the piece must
     grow to contain both (they both unify with the head). *)
  let rule =
    Tgd.make ~name:"r" ~body:[ atom "project" [ v "P" ] ]
      ~head:[ atom "member" [ v "P"; v "M" ] ]
  in
  let q =
    Cq.make ~name:"q" ~answer:[]
      ~body:[ atom "member" [ v "P1"; v "X" ]; atom "member" [ v "P2"; v "X" ] ]
  in
  match Piece.all q rule with
  | [ pu ] ->
    Alcotest.(check int) "both atoms in the piece" 2 (List.length pu.Piece.piece);
    Alcotest.(check int) "empty remainder" 0 (List.length pu.Piece.remainder);
    (* Applying it yields a single project atom. *)
    let q' = Piece.apply q pu in
    Alcotest.(check int) "rewritten to one atom" 1 (List.length q'.Cq.body)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 piece unifier, got %d" (List.length other))

let test_piece_growth_fails_on_other_predicate () =
  (* The shared existential also occurs in an atom with a different
     predicate: growth is impossible, no unifier. *)
  let rule =
    Tgd.make ~name:"r" ~body:[ atom "project" [ v "P" ] ]
      ~head:[ atom "member" [ v "P"; v "M" ] ]
  in
  let q =
    Cq.make ~name:"q" ~answer:[]
      ~body:[ atom "member" [ v "P1"; v "X" ]; atom "leads" [ v "X"; v "P2" ] ]
  in
  Alcotest.(check int) "growth blocked" 0 (List.length (Piece.all q rule))

let test_piece_requires_single_head () =
  let rule =
    Tgd.make ~name:"mh" ~body:[ atom "a" [ v "X" ] ]
      ~head:[ atom "b" [ v "X" ]; atom "c" [ v "X" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "b" [ v "X" ] ] in
  Alcotest.check_raises "multi-head rejected" (Invalid_argument "Piece.all: rule must be single-head")
    (fun () -> ignore (Piece.all q rule))

let test_piece_apply_substitutes_answers () =
  (* Unifying can specialise the answer tuple. *)
  let rule =
    Tgd.make ~name:"r" ~body:[ atom "base" [ v "U" ] ] ~head:[ atom "p" [ v "U"; c "k" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[ v "Y" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  match Piece.all q rule with
  | [ pu ] ->
    let q' = Piece.apply q pu in
    Alcotest.(check bool) "answer became the constant k" true
      (Term.equal (List.hd q'.Cq.answer) (c "k"))
  | _ -> Alcotest.fail "expected one piece unifier"

(* ------------------------------------------------------------------ *)
(* Rewriting *)

let test_rewrite_example1 () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X"; v "Y" ] ] in
  let r = Rewrite.ucq Tgd_core.Paper_examples.example1 q in
  Alcotest.(check bool) "complete" true (outcome_is_complete r.Rewrite.outcome);
  Alcotest.(check int) "three disjuncts" 3 (List.length r.Rewrite.ucq)

let test_rewrite_example2_diverges () =
  let config = { Rewrite.default_config with max_cqs = 150 } in
  let r =
    Rewrite.ucq ~config Tgd_core.Paper_examples.example2 Tgd_core.Paper_examples.example2_query
  in
  Alcotest.(check bool) "truncated" true (not (outcome_is_complete r.Rewrite.outcome));
  Alcotest.(check bool) "grew deep" true (r.Rewrite.stats.Rewrite.max_depth > 5)

let test_rewrite_example3_terminates () =
  List.iter
    (fun (pred, arity) ->
      let vars = List.init arity (fun i -> v (Printf.sprintf "X%d" i)) in
      let q = Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make pred vars ] in
      let r = Rewrite.ucq Tgd_core.Paper_examples.example3 q in
      Alcotest.(check bool)
        (Printf.sprintf "complete for %s" (Symbol.name pred))
        true
        (outcome_is_complete r.Rewrite.outcome))
    (Program.predicates Tgd_core.Paper_examples.example3)

let test_rewrite_contains_original () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  let r = Rewrite.ucq Tgd_gen.University.ontology q in
  Alcotest.(check bool) "input query among disjuncts" true
    (List.exists (fun d -> Containment.equivalent d (Cq.canonical q)) r.Rewrite.ucq)

let test_rewrite_multi_head_aux_hidden () =
  (* Multi-head rule: the auxiliary predicate must not leak into the
     output. *)
  let p =
    Program.make_exn
      [
        Tgd.make ~name:"mh" ~body:[ atom "emp" [ v "X" ] ]
          ~head:[ atom "works" [ v "X"; v "D" ]; atom "dept" [ v "D" ] ];
      ]
  in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "works" [ v "X"; v "D" ]; atom "dept" [ v "D" ] ] in
  let r = Rewrite.ucq p q in
  Alcotest.(check bool) "complete" true (outcome_is_complete r.Rewrite.outcome);
  (* emp(X) must be a disjunct: both head atoms resolve against the same
     rule application through factorization of the auxiliary atom. *)
  let emp_q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "emp" [ v "X" ] ] in
  Alcotest.(check bool) "emp disjunct present" true
    (List.exists (fun d -> Containment.equivalent d emp_q) r.Rewrite.ucq);
  List.iter
    (fun (d : Cq.t) ->
      List.iter
        (fun (a : Atom.t) ->
          let name = Symbol.name a.Atom.pred in
          Alcotest.(check bool) "no aux predicate" false
            (String.length name >= 3 && String.sub name 0 3 = "aux"))
        d.Cq.body)
    r.Rewrite.ucq

let test_rewrite_depth_budget () =
  let config = { Rewrite.default_config with max_depth = 2 } in
  let r =
    Rewrite.ucq ~config Tgd_core.Paper_examples.example2 Tgd_core.Paper_examples.example2_query
  in
  (match r.Rewrite.outcome with
  | Rewrite.Truncated d ->
    Alcotest.(check bool) "depth mentioned" true
      (String.length (Tgd_exec.Governor.diag_summary d) > 0)
  | Rewrite.Complete -> Alcotest.fail "expected truncation");
  Alcotest.(check bool) "did not exceed depth" true (r.Rewrite.stats.Rewrite.max_depth <= 2)

let test_rewrite_pruning_equivalence () =
  (* With and without subsumption pruning, the rewritings are equivalent as
     UCQs. (On a compact ontology: the unpruned exploration is exponential
     by design — that gap is measured in bench E9, not here.) *)
  let p = Tgd_core.Paper_examples.example1 in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X"; v "Y" ] ] in
  let with_prune = Rewrite.ucq p q in
  let no_prune =
    Rewrite.ucq ~config:{ Rewrite.default_config with prune_subsumed = false } p q
  in
  Alcotest.(check bool) "both complete" true
    (outcome_is_complete with_prune.Rewrite.outcome
    && outcome_is_complete no_prune.Rewrite.outcome);
  Alcotest.(check bool) "equivalent UCQs" true
    (Containment.ucq_contained with_prune.Rewrite.ucq no_prune.Rewrite.ucq
    && Containment.ucq_contained no_prune.Rewrite.ucq with_prune.Rewrite.ucq);
  Alcotest.(check bool) "pruning not larger" true
    (List.length with_prune.Rewrite.ucq <= List.length no_prune.Rewrite.ucq)

let test_rewrite_ucq_of_union () =
  let q1 = Cq.make ~name:"q1" ~answer:[ v "X" ] ~body:[ atom "student" [ v "X" ] ] in
  let q2 = Cq.make ~name:"q2" ~answer:[ v "X" ] ~body:[ atom "faculty" [ v "X" ] ] in
  let r = Rewrite.ucq_of_union Tgd_gen.University.ontology [ q1; q2 ] in
  Alcotest.(check bool) "complete" true (outcome_is_complete r.Rewrite.outcome);
  Alcotest.(check bool) "covers both branches" true (List.length r.Rewrite.ucq >= 2)

let test_rewrite_dl_lite_role_hierarchy () =
  (* person query through a role hierarchy and inverse roles. *)
  let tbox =
    Tgd_gen.Dl_lite.
      [
        Concept_incl (Exists (Inv "treats"), Atomic "patient");
        Concept_incl (Atomic "patient", Atomic "person");
        Role_incl (Role "operates", Role "treats");
      ]
  in
  let p = Tgd_gen.Dl_lite.to_program tbox in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  let r = Rewrite.ucq p q in
  Alcotest.(check bool) "complete" true (outcome_is_complete r.Rewrite.outcome);
  (* person <- patient <- exists treats- <- exists operates-: 4 disjuncts. *)
  Alcotest.(check int) "four disjuncts" 4 (List.length r.Rewrite.ucq)

let test_rewrite_empty_program () =
  let p = Program.make_exn ~name:"empty" [] in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X" ] ] in
  let r = Rewrite.ucq p q in
  Alcotest.(check bool) "complete" true (outcome_is_complete r.Rewrite.outcome);
  Alcotest.(check int) "identity rewriting" 1 (List.length r.Rewrite.ucq)

let () =
  Alcotest.run "rewrite"
    [
      ( "piece",
        [
          Alcotest.test_case "plain unifier" `Quick test_piece_plain;
          Alcotest.test_case "answer variable blocks" `Quick test_piece_blocks_answer_var;
          Alcotest.test_case "constant blocks" `Quick test_piece_blocks_constant;
          Alcotest.test_case "frontier merge blocks" `Quick test_piece_blocks_frontier_merge;
          Alcotest.test_case "piece growth" `Quick test_piece_grows_to_shared_atoms;
          Alcotest.test_case "growth fails across predicates" `Quick
            test_piece_growth_fails_on_other_predicate;
          Alcotest.test_case "single-head required" `Quick test_piece_requires_single_head;
          Alcotest.test_case "answers substituted" `Quick test_piece_apply_substitutes_answers;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "example 1 complete" `Quick test_rewrite_example1;
          Alcotest.test_case "example 2 diverges" `Quick test_rewrite_example2_diverges;
          Alcotest.test_case "example 3 terminates" `Quick test_rewrite_example3_terminates;
          Alcotest.test_case "contains original query" `Quick test_rewrite_contains_original;
          Alcotest.test_case "multi-head via aux" `Quick test_rewrite_multi_head_aux_hidden;
          Alcotest.test_case "depth budget" `Quick test_rewrite_depth_budget;
          Alcotest.test_case "pruning preserves semantics" `Quick test_rewrite_pruning_equivalence;
          Alcotest.test_case "union rewriting" `Quick test_rewrite_ucq_of_union;
          Alcotest.test_case "dl-lite role hierarchy" `Quick test_rewrite_dl_lite_role_hierarchy;
          Alcotest.test_case "empty program" `Quick test_rewrite_empty_program;
        ] );
    ]
