(* Unit tests for the relational substrate: values, tuples, relations,
   instances, CQ evaluation, semi-naive Datalog, SQL generation. *)

open Tgd_logic
open Tgd_db

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args
let vc s = Value.const s
let tuple l = Array.of_list (List.map vc l)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Value / Tuple *)

let test_value_nulls () =
  Alcotest.(check bool) "null <> const" false (Value.equal (Value.Null 1) (vc "1"));
  Alcotest.(check bool) "null identity" true (Value.equal (Value.Null 7) (Value.Null 7));
  Alcotest.(check bool) "is_null" true (Value.is_null (Value.Null 1));
  Alcotest.(check bool) "tuple has_null" true (Tuple.has_null [| vc "a"; Value.Null 1 |]);
  Alcotest.(check bool) "tuple no null" false (Tuple.has_null (tuple [ "a"; "b" ]))

let test_value_of_term () =
  Alcotest.(check bool) "const round trip" true
    (Value.equal (Value.of_term (c "a")) (vc "a"));
  Alcotest.check_raises "variable rejected" (Invalid_argument "Value.of_term: variable")
    (fun () -> ignore (Value.of_term (v "X")))

(* ------------------------------------------------------------------ *)
(* Relation *)

let test_relation_insert () =
  let r = Relation.create ~arity:2 in
  Alcotest.(check bool) "first insert" true (Relation.insert r (tuple [ "a"; "b" ]));
  Alcotest.(check bool) "duplicate" false (Relation.insert r (tuple [ "a"; "b" ]));
  Alcotest.(check int) "cardinality" 1 (Relation.cardinality r);
  Alcotest.(check bool) "mem" true (Relation.mem r (tuple [ "a"; "b" ]));
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Relation.insert: arity mismatch")
    (fun () -> ignore (Relation.insert r (tuple [ "a" ])))

let test_relation_lookup () =
  let r = Relation.create ~arity:2 in
  ignore (Relation.insert r (tuple [ "a"; "b" ]));
  ignore (Relation.insert r (tuple [ "a"; "c" ]));
  ignore (Relation.insert r (tuple [ "d"; "b" ]));
  Alcotest.(check int) "index col 0" 2 (List.length (Relation.lookup r ~pos:0 (vc "a")));
  Alcotest.(check int) "index col 1" 2 (List.length (Relation.lookup r ~pos:1 (vc "b")));
  Alcotest.(check int) "miss" 0 (List.length (Relation.lookup r ~pos:0 (vc "zz")))

let test_relation_index_maintained () =
  (* Build the index, then insert more rows: lookups must see them. *)
  let r = Relation.create ~arity:1 in
  ignore (Relation.insert r (tuple [ "a" ]));
  Alcotest.(check int) "before" 1 (List.length (Relation.lookup r ~pos:0 (vc "a")));
  ignore (Relation.insert r (tuple [ "a" ]));
  (* duplicate: no change *)
  ignore (Relation.insert r (tuple [ "b" ]));
  Alcotest.(check int) "after new rows" 1 (List.length (Relation.lookup r ~pos:0 (vc "b")))

(* ------------------------------------------------------------------ *)
(* Instance *)

let test_instance_basics () =
  let inst = Instance.create () in
  Alcotest.(check bool) "new fact" true (Instance.add_fact inst (Symbol.intern "p") (tuple [ "a" ]));
  Alcotest.(check bool) "dup fact" false (Instance.add_fact inst (Symbol.intern "p") (tuple [ "a" ]));
  Alcotest.(check int) "cardinality" 1 (Instance.cardinality inst);
  Alcotest.check_raises "arity clash"
    (Invalid_argument "Instance: predicate p used with arities 1 and 2") (fun () ->
      ignore (Instance.add_fact inst (Symbol.intern "p") (tuple [ "a"; "b" ])))

let test_instance_copy_isolated () =
  let inst = Instance.create () in
  ignore (Instance.add_fact inst (Symbol.intern "p") (tuple [ "a" ]));
  let copy = Instance.copy inst in
  ignore (Instance.add_fact copy (Symbol.intern "p") (tuple [ "b" ]));
  Alcotest.(check int) "copy grew" 2 (Instance.cardinality copy);
  Alcotest.(check int) "original untouched" 1 (Instance.cardinality inst)

let test_instance_of_atoms () =
  let inst = Instance.of_atoms [ atom "p" [ c "a"; c "b" ]; atom "q" [ c "x" ] ] in
  Alcotest.(check int) "two facts" 2 (Instance.cardinality inst);
  Alcotest.(check int) "two predicates" 2 (List.length (Instance.predicates inst));
  Alcotest.(check int) "atoms round trip" 2 (List.length (Instance.to_atoms inst))

(* ------------------------------------------------------------------ *)
(* Eval *)

let sample_db () =
  Instance.of_atoms
    [
      atom "edge" [ c "a"; c "b" ];
      atom "edge" [ c "b"; c "c" ];
      atom "edge" [ c "c"; c "a" ];
      atom "edge" [ c "c"; c "c" ];
      atom "color" [ c "a"; c "red" ];
      atom "color" [ c "b"; c "blue" ];
    ]

let test_eval_single_atom () =
  let db = sample_db () in
  let q = Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ] ~body:[ atom "edge" [ v "X"; v "Y" ] ] in
  Alcotest.(check int) "all edges" 4 (List.length (Eval.cq db q))

let test_eval_join () =
  let db = sample_db () in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X"; v "Z" ]
      ~body:[ atom "edge" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ]
  in
  (* paths of length 2: ab-bc, bc-ca, bc-cc, ca-ab, cc-ca, cc-cc *)
  Alcotest.(check int) "paths of length 2" 6 (List.length (Eval.cq db q))

let test_eval_constant_selection () =
  let db = sample_db () in
  let q = Cq.make ~name:"q" ~answer:[ v "Y" ] ~body:[ atom "edge" [ c "a"; v "Y" ] ] in
  match Eval.cq db q with
  | [ t ] -> Alcotest.(check bool) "a's successor is b" true (Value.equal t.(0) (vc "b"))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 answer, got %d" (List.length other))

let test_eval_repeated_var () =
  let db = sample_db () in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "edge" [ v "X"; v "X" ] ] in
  match Eval.cq db q with
  | [ t ] -> Alcotest.(check bool) "self loop at c" true (Value.equal t.(0) (vc "c"))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 answer, got %d" (List.length other))

let test_eval_boolean () =
  let db = sample_db () in
  let sat = Cq.make ~name:"q" ~answer:[] ~body:[ atom "color" [ v "X"; c "red" ] ] in
  let unsat = Cq.make ~name:"q" ~answer:[] ~body:[ atom "color" [ v "X"; c "green" ] ] in
  Alcotest.(check int) "satisfied boolean: one empty tuple" 1 (List.length (Eval.cq db sat));
  Alcotest.(check int) "unsatisfied boolean: empty" 0 (List.length (Eval.cq db unsat));
  Alcotest.(check bool) "cq_exists" true (Eval.cq_exists db sat);
  Alcotest.(check bool) "cq_exists false" false (Eval.cq_exists db unsat)

let test_eval_missing_predicate () =
  let db = sample_db () in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "nothing" [ v "X" ] ] in
  Alcotest.(check int) "no relation, no answers" 0 (List.length (Eval.cq db q))

let test_eval_cross_product () =
  let db = sample_db () in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X"; v "U" ]
      ~body:[ atom "color" [ v "X"; c "red" ]; atom "color" [ v "U"; v "C" ] ]
  in
  Alcotest.(check int) "1 x 2 product" 2 (List.length (Eval.cq db q))

let test_eval_constant_answer () =
  let db = sample_db () in
  let q = Cq.make ~name:"q" ~answer:[ c "k"; v "X" ] ~body:[ atom "edge" [ v "X"; c "b" ] ] in
  match Eval.cq db q with
  | [ t ] -> Alcotest.(check bool) "constant in answer tuple" true (Value.equal t.(0) (vc "k"))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 answer, got %d" (List.length other))

let test_eval_ucq_union_dedup () =
  let db = sample_db () in
  let q1 = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "edge" [ v "X"; v "Y" ] ] in
  let q2 = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "edge" [ v "Y"; v "X" ] ] in
  (* sources: a,b,c ; targets: b,c,a,c -> union {a,b,c} *)
  Alcotest.(check int) "deduplicated union" 3 (List.length (Eval.ucq db [ q1; q2 ]))

(* Regression: the greedy planner must sink isolated (cross-product) atoms
   below atoms joined to the rest of the body, even when the isolated
   relation is the smallest. With t first, the a-r join below runs once per
   t-tuple (~4800 join-search steps); with t last it runs once (~2500). *)
let test_eval_planner_sinks_isolated_atoms () =
  let atoms = ref [] in
  for i = 0 to 59 do
    let n = Printf.sprintf "n%d" i in
    atoms := atom "a" [ c n ] :: atom "r" [ c n; c n ] :: !atoms
  done;
  for j = 0 to 39 do
    atoms := atom "t" [ c (Printf.sprintf "m%d" j) ] :: !atoms
  done;
  let db = Instance.of_atoms !atoms in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ atom "t" [ v "Z" ]; atom "a" [ v "X" ]; atom "r" [ v "X"; v "Y" ] ]
  in
  let tel = Tgd_exec.Telemetry.create () in
  let gov = Tgd_exec.Governor.create ~telemetry:tel () in
  let answers = Eval.cq ~gov db q in
  Alcotest.(check int) "answers" 60 (List.length answers);
  let steps = Tgd_exec.Telemetry.get tel "eval.steps" in
  Alcotest.(check bool)
    (Printf.sprintf "join-search steps (%d) bounded: isolated atom evaluated last" steps)
    true
    (steps <= 3_000)

let test_eval_forced () =
  let db = sample_db () in
  let body = [ atom "edge" [ v "X"; v "Y" ] ] in
  let count = ref 0 in
  Eval.bindings ~forced:(0, [ tuple [ "a"; "b" ] ]) db body (fun _ -> incr count);
  Alcotest.(check int) "forced atom restricted to given tuples" 1 !count

(* ------------------------------------------------------------------ *)
(* Datalog *)

let test_datalog_transitive_closure () =
  let db = sample_db () in
  let tc =
    Program.make_exn ~name:"tc"
      [
        Tgd.make ~name:"base" ~body:[ atom "edge" [ v "X"; v "Y" ] ]
          ~head:[ atom "path" [ v "X"; v "Y" ] ];
        Tgd.make ~name:"step"
          ~body:[ atom "path" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ]
          ~head:[ atom "path" [ v "X"; v "Z" ] ];
      ]
  in
  let stats = Datalog.saturate tc db in
  (* a,b,c are all mutually reachable (and c->c): path = {a,b,c}^2. *)
  let q = Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ] ~body:[ atom "path" [ v "X"; v "Y" ] ] in
  Alcotest.(check int) "full closure" 9 (List.length (Eval.cq db q));
  Alcotest.(check int) "derived count" 9 stats.Datalog.derived;
  Alcotest.(check bool) "several rounds" true (stats.Datalog.rounds >= 2)

let test_datalog_rejects_existentials () =
  let p =
    Program.make_exn
      [ Tgd.make ~name:"bad" ~body:[ atom "p" [ v "X" ] ] ~head:[ atom "q" [ v "X"; v "Z" ] ] ]
  in
  Alcotest.check_raises "existential rejected"
    (Invalid_argument "Datalog.saturate: rule bad has existential head variables") (fun () ->
      ignore (Datalog.saturate p (Instance.create ())))

let test_datalog_idempotent () =
  let db = sample_db () in
  let p =
    Program.make_exn
      [ Tgd.make ~name:"copy" ~body:[ atom "edge" [ v "X"; v "Y" ] ] ~head:[ atom "e2" [ v "X"; v "Y" ] ] ]
  in
  let s1 = Datalog.saturate p db in
  let s2 = Datalog.saturate p db in
  Alcotest.(check int) "first run derives" 4 s1.Datalog.derived;
  Alcotest.(check int) "second run derives nothing" 0 s2.Datalog.derived

let test_datalog_constants_in_head () =
  let db = Instance.of_atoms [ atom "p" [ c "x" ] ] in
  let prog =
    Program.make_exn
      [ Tgd.make ~name:"tag" ~body:[ atom "p" [ v "X" ] ] ~head:[ atom "tagged" [ v "X"; c "yes" ] ] ]
  in
  ignore (Datalog.saturate prog db);
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "tagged" [ v "X"; c "yes" ] ] in
  Alcotest.(check int) "head constant materialized" 1 (List.length (Eval.cq db q))

(* ------------------------------------------------------------------ *)
(* Csv_io *)

let test_csv_load () =
  let src = "edge,a,b\n# comment\n\nedge,b,c\ncolor,a,red\n" in
  match Csv_io.load_string src with
  | Error e -> Alcotest.fail e
  | Ok inst ->
    Alcotest.(check int) "three facts" 3 (Instance.cardinality inst);
    Alcotest.(check int) "two predicates" 2 (List.length (Instance.predicates inst))

let test_csv_quoting () =
  let src = "name,\"O'Hara, Ada\",\"says \"\"hi\"\"\"\n" in
  match Csv_io.load_string src with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
    match Instance.facts inst with
    | [ (_, t) ] ->
      Alcotest.(check bool) "comma kept" true (Value.equal t.(0) (vc "O'Hara, Ada"));
      Alcotest.(check bool) "escaped quote" true (Value.equal t.(1) (vc "says \"hi\""))
    | _ -> Alcotest.fail "expected one fact")

let test_csv_errors () =
  (match Csv_io.load_string "p,\"unterminated\n" with
  | Ok _ -> Alcotest.fail "unterminated quote accepted"
  | Error msg -> Alcotest.(check bool) "line number" true (String.length msg > 0));
  match Csv_io.load_string "p,a\np,a,b\n" with
  | Ok _ -> Alcotest.fail "arity clash accepted"
  | Error msg -> Alcotest.(check bool) "mentions line 2" true (String.length msg > 0)

let test_csv_roundtrip () =
  let inst = sample_db () in
  match Csv_io.load_string (Csv_io.save_string inst) with
  | Error e -> Alcotest.fail e
  | Ok inst' ->
    Alcotest.(check int) "same cardinality" (Instance.cardinality inst)
      (Instance.cardinality inst');
    Alcotest.(check string) "canonical text equal" (Csv_io.save_string inst)
      (Csv_io.save_string inst')

(* Write -> read -> equal instance, on every shape of field the writer can
   be handed: separators, escaped quotes, literal newlines, leading and
   trailing whitespace (would be trimmed if left unquoted), a leading '#'
   (would read back as a comment), and the empty string. *)
let test_csv_roundtrip_hostile () =
  let inst = Instance.create () in
  let add pred args = ignore (Instance.add_fact inst (Symbol.intern pred) (Array.map Value.const args)) in
  add "plain" [| "a"; "b" |];
  add "quoty" [| "O'Hara, Ada"; "says \"hi\"" |];
  add "newliny" [| "two\nlines"; "x" |];
  add "spacey" [| " leading"; "trailing "; "\ttabbed\t" |];
  add "hashy" [| "#not-a-comment" |];
  add "#hash_pred" [| "v" |];
  add "empty_field" [| ""; "z" |];
  let text = Csv_io.save_string inst in
  match Csv_io.load_string text with
  | Error e -> Alcotest.fail e
  | Ok inst' ->
    let facts i =
      Instance.facts i
      |> List.map (fun (p, t) -> (Symbol.name p, Array.to_list (Array.map (Format.asprintf "%a" Value.pp) t)))
      |> List.sort compare
    in
    Alcotest.(check (list (pair string (list string)))) "facts equal" (facts inst) (facts inst');
    Alcotest.(check string) "text stable" text (Csv_io.save_string inst')

(* An empty relation has no facts, so the fact-per-record format drops it:
   write -> read yields the facts, and predicates with zero rows are simply
   absent. Make that contract explicit. *)
let test_csv_empty_relation () =
  let inst = Instance.create () in
  ignore (Instance.add_fact inst (Symbol.intern "edge") [| Value.const "a"; Value.const "b" |]);
  (* Force an empty relation into existence. *)
  (match Instance.relation inst (Symbol.intern "lonely") with
  | None -> ()
  | Some _ -> Alcotest.fail "lonely should not exist yet");
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "edge" [ v "X"; v "Y" ] ] in
  ignore (Eval.cq inst q);
  Alcotest.(check string) "empty instance saves to empty text" ""
    (Csv_io.save_string (Instance.create ()));
  (match Csv_io.load_string "" with
  | Error e -> Alcotest.fail e
  | Ok i -> Alcotest.(check int) "empty text loads empty instance" 0 (Instance.cardinality i));
  match Csv_io.load_string (Csv_io.save_string inst) with
  | Error e -> Alcotest.fail e
  | Ok inst' ->
    Alcotest.(check int) "one fact survives" 1 (Instance.cardinality inst');
    Alcotest.(check int) "only the populated predicate exists" 1
      (List.length (Instance.predicates inst'))

let test_csv_multiline_quoted () =
  let src = "p,\"a\nb\",c\nq,plain\n" in
  match Csv_io.load_string src with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
    Alcotest.(check int) "two facts" 2 (Instance.cardinality inst);
    match Instance.relation inst (Symbol.intern "p") with
    | None -> Alcotest.fail "p missing"
    | Some rel -> (
      match Relation.to_list rel with
      | [ t ] -> Alcotest.(check bool) "newline kept" true (Value.equal t.(0) (vc "a\nb"))
      | _ -> Alcotest.fail "expected one p tuple"))

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_orders_constants_first () =
  let db = sample_db () in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ atom "edge" [ v "X"; v "Y" ]; atom "color" [ v "X"; c "red" ] ]
  in
  match Plan.choose db q with
  | [ s1; s2 ] ->
    Alcotest.(check string) "selective atom first" "color" (Symbol.name s1.Plan.atom.Atom.pred);
    (match s1.Plan.access with
    | Plan.Index_lookup 1 -> ()
    | _ -> Alcotest.fail "expected an index probe on the constant column");
    (match s2.Plan.access with
    | Plan.Index_lookup 0 -> ()
    | _ -> Alcotest.fail "expected an index probe on the join column")
  | other -> Alcotest.fail (Printf.sprintf "expected 2 steps, got %d" (List.length other))

let test_plan_scan_when_unbound () =
  let db = sample_db () in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "edge" [ v "X"; v "Y" ] ] in
  match Plan.choose db q with
  | [ s ] -> Alcotest.(check bool) "scan" true (s.Plan.access = Plan.Scan)
  | _ -> Alcotest.fail "expected 1 step"

let test_plan_explain_nonempty () =
  let db = sample_db () in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ atom "edge" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ]
  in
  Alcotest.(check bool) "explanation text" true (String.length (Plan.explain db q) > 20)

(* ------------------------------------------------------------------ *)
(* Sql *)

let test_sql_shape () =
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ atom "p" [ v "X"; v "Y" ]; atom "r" [ v "Y"; c "a" ] ]
  in
  let sql = Sql.of_cq q in
  Alcotest.(check bool) "select" true (contains sql "SELECT DISTINCT t0.c1 AS a1");
  Alcotest.(check bool) "from two tables" true (contains sql "p AS t0, r AS t1");
  Alcotest.(check bool) "join condition" true (contains sql "t0.c2 = t1.c1");
  Alcotest.(check bool) "constant condition" true (contains sql "t1.c2 = 'a'")

let test_sql_boolean () =
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "p" [ v "X" ] ] in
  Alcotest.(check bool) "boolean selects 1" true (contains (Sql.of_cq q) "SELECT DISTINCT 1 AS sat")

let test_sql_union () =
  let q1 = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X" ] ] in
  let q2 = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X" ] ] in
  Alcotest.(check bool) "union" true (contains (Sql.of_ucq [ q1; q2 ]) "UNION");
  Alcotest.check_raises "empty ucq" (Invalid_argument "Sql.of_ucq: empty UCQ") (fun () ->
      ignore (Sql.of_ucq []))

let test_sql_quote () =
  Alcotest.(check string) "quote doubling" "'o''brien'" (Sql.quote "o'brien")

let test_sql_repeated_var_same_atom () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "X" ] ] in
  Alcotest.(check bool) "self equality" true (contains (Sql.of_cq q) "t0.c1 = t0.c2")

(* ------------------------------------------------------------------ *)
(* Columnar sealed storage *)

let test_columnar_roundtrip_basic () =
  let r = Relation.create ~arity:2 in
  ignore (Relation.insert r [| vc "a"; vc "b" |]);
  ignore (Relation.insert r [| vc "a"; Value.Null 3 |]);
  ignore (Relation.insert r [| Value.Null 0; vc "b" |]);
  Alcotest.(check bool) "no block before seal" true (Relation.columnar r = None);
  Relation.seal r;
  match Relation.columnar r with
  | None -> Alcotest.fail "seal built no columnar block"
  | Some block ->
    Alcotest.(check int) "arity" 2 (Columnar.arity block);
    Alcotest.(check int) "nrows" 3 (Columnar.nrows block);
    let decoded = ref [] in
    Columnar.iter_rows (fun t -> decoded := t :: !decoded) block;
    Alcotest.(check bool) "decoded rows are exactly the relation" true
      (List.length !decoded = 3 && List.for_all (Relation.mem r) !decoded);
    (* Probing column 0 for "a"'s code finds exactly the two "a"-rows. *)
    (match Value.code (vc "a") with
    | None -> Alcotest.fail "constant uncodable"
    | Some code ->
      let rows, start, len = Columnar.probe block ~col:0 code in
      Alcotest.(check int) "probe hits" 2 len;
      for k = start to start + len - 1 do
        let t = Columnar.decode_row block rows.(k) in
        Alcotest.(check bool) "probed row has the key" true (Value.equal t.(0) (vc "a"))
      done);
    (* Nulls code distinctly from every constant and decode back. *)
    (match Value.code (Value.Null 3) with
    | None -> Alcotest.fail "null uncodable"
    | Some code ->
      Alcotest.(check bool) "null decodes back" true
        (Value.equal (Value.decode code) (Value.Null 3)))

let gen_col_value =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> vc (Printf.sprintf "c%d" i)) (int_bound 9));
        (1, map (fun n -> Value.Null n) (int_bound 5));
      ])

let gen_col_tuples =
  QCheck.Gen.(
    int_range 1 3 >>= fun arity ->
    int_range 0 60 >>= fun n ->
    list_repeat n (map Array.of_list (list_repeat arity gen_col_value)) >>= fun tuples ->
    return (arity, tuples))

let arb_col_tuples =
  QCheck.make
    ~print:(fun (arity, tuples) -> Printf.sprintf "arity %d, %d tuples" arity (List.length tuples))
    gen_col_tuples

let sealed_relation_of arity tuples =
  let r = Relation.create ~arity in
  List.iter (fun t -> ignore (Relation.insert r t)) tuples;
  Relation.seal r;
  r

let sorted_tuples_of_block block =
  let acc = ref [] in
  Columnar.iter_rows (fun t -> acc := t :: !acc) block;
  List.sort Tuple.compare !acc

let prop_columnar_roundtrip =
  QCheck.Test.make ~name:"columnar encode/decode round-trips the tuple set" ~count:100
    arb_col_tuples (fun (arity, tuples) ->
      let r = sealed_relation_of arity tuples in
      match Relation.columnar r with
      | None -> false (* every generated value is codable *)
      | Some block ->
        (* Decoded block ≡ relation contents (deduplicated, order-free). *)
        let expect = List.sort Tuple.compare (Relation.to_list r) in
        let got = sorted_tuples_of_block block in
        List.length got = List.length expect
        && List.for_all2 Tuple.equal got expect
        (* Code order ≡ value order: sorting coded rows lexicographically
           must equal sorting the decoded tuples with [Tuple.compare] —
           the invariant the partition-owned merge's byte-identity rests
           on. *)
        &&
        let n = Columnar.nrows block in
        let rows = Array.init n (fun i -> Array.init arity (fun j -> (Columnar.col block j).(i))) in
        Array.sort (fun a b -> compare (a : int array) b) rows;
        let by_codes = Array.to_list (Array.map (Array.map Value.decode) rows) in
        List.for_all2 Tuple.equal by_codes got)

let prop_columnar_codes_stable_under_reseal =
  QCheck.Test.make ~name:"columnar codes are stable under re-seal" ~count:100 arb_col_tuples
    (fun (arity, tuples) ->
      let r = sealed_relation_of arity tuples in
      let codes_of block =
        let n = Columnar.nrows block in
        List.init n (fun i ->
            ( Format.asprintf "%a" Tuple.pp (Columnar.decode_row block i),
              Array.init arity (fun j -> (Columnar.col block j).(i)) ))
      in
      match Relation.columnar r with
      | None -> false
      | Some block1 ->
        let before = codes_of block1 in
        (* Grow the relation (discarding the block) and re-seal: every
           pre-existing tuple must re-encode to exactly the same codes. *)
        ignore (Relation.insert r (Array.make arity (vc "fresh")));
        if Relation.columnar r <> None then false
        else begin
          Relation.seal r;
          match Relation.columnar r with
          | None -> false
          | Some block2 ->
            let after = codes_of block2 in
            List.for_all
              (fun (key, codes) ->
                match List.assoc_opt key after with
                | None -> false
                | Some codes' -> codes = codes')
              before
        end)

let () =
  Alcotest.run "db"
    [
      ( "value",
        [
          Alcotest.test_case "nulls" `Quick test_value_nulls;
          Alcotest.test_case "of_term" `Quick test_value_of_term;
        ] );
      ( "relation",
        [
          Alcotest.test_case "insert" `Quick test_relation_insert;
          Alcotest.test_case "lookup" `Quick test_relation_lookup;
          Alcotest.test_case "index maintenance" `Quick test_relation_index_maintained;
        ] );
      ( "instance",
        [
          Alcotest.test_case "basics" `Quick test_instance_basics;
          Alcotest.test_case "copy isolation" `Quick test_instance_copy_isolated;
          Alcotest.test_case "of_atoms" `Quick test_instance_of_atoms;
        ] );
      ( "eval",
        [
          Alcotest.test_case "single atom" `Quick test_eval_single_atom;
          Alcotest.test_case "join" `Quick test_eval_join;
          Alcotest.test_case "constant selection" `Quick test_eval_constant_selection;
          Alcotest.test_case "repeated variable" `Quick test_eval_repeated_var;
          Alcotest.test_case "boolean queries" `Quick test_eval_boolean;
          Alcotest.test_case "missing predicate" `Quick test_eval_missing_predicate;
          Alcotest.test_case "cross product" `Quick test_eval_cross_product;
          Alcotest.test_case "isolated atoms last" `Quick test_eval_planner_sinks_isolated_atoms;
          Alcotest.test_case "constant answer" `Quick test_eval_constant_answer;
          Alcotest.test_case "ucq union dedup" `Quick test_eval_ucq_union_dedup;
          Alcotest.test_case "forced bindings" `Quick test_eval_forced;
        ] );
      ( "datalog",
        [
          Alcotest.test_case "transitive closure" `Quick test_datalog_transitive_closure;
          Alcotest.test_case "rejects existentials" `Quick test_datalog_rejects_existentials;
          Alcotest.test_case "idempotent" `Quick test_datalog_idempotent;
          Alcotest.test_case "head constants" `Quick test_datalog_constants_in_head;
        ] );
      ( "csv",
        [
          Alcotest.test_case "load basic" `Quick test_csv_load;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "round trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "round trip (hostile fields)" `Quick test_csv_roundtrip_hostile;
          Alcotest.test_case "empty relations" `Quick test_csv_empty_relation;
          Alcotest.test_case "multiline quoted field" `Quick test_csv_multiline_quoted;
        ] );
      ( "plan",
        [
          Alcotest.test_case "constants first" `Quick test_plan_orders_constants_first;
          Alcotest.test_case "scan when unbound" `Quick test_plan_scan_when_unbound;
          Alcotest.test_case "explain" `Quick test_plan_explain_nonempty;
        ] );
      ( "sql",
        [
          Alcotest.test_case "shape" `Quick test_sql_shape;
          Alcotest.test_case "boolean" `Quick test_sql_boolean;
          Alcotest.test_case "union" `Quick test_sql_union;
          Alcotest.test_case "quoting" `Quick test_sql_quote;
          Alcotest.test_case "repeated var" `Quick test_sql_repeated_var_same_atom;
        ] );
      ( "columnar",
        Alcotest.test_case "round trip with nulls and probes" `Quick
          test_columnar_roundtrip_basic
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_columnar_roundtrip; prop_columnar_codes_stable_under_reseal ] );
    ]
