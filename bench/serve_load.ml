(* E16v2: closed-loop load bench for the multi-client network front end.

   Forks the server (Net.serve over a Unix-domain socket) into a child
   process, then drives >= 100 concurrent client connections from a
   select-based closed loop in the parent: every connection keeps exactly
   one request outstanding, sampling Zipf(s=1) over the university query
   mix with alpha-renamed variants (so cache hits go through the canonical
   key, never string identity). Reports p50/p95/p99 latency and saturation
   rps per worker-count leg into BENCH_serve.json (schema bench_serve/v2),
   and verifies on every single response that (a) the id is the one this
   connection is owed — no lost, duplicated or reordered responses — and
   (b) the answer bytes are identical to the sequential in-process path.

   The legs double as the CI scaling gate for the 4-domain regression:
   with the minor heap left at its 256k-word default, every minor
   collection is a stop-the-world barrier across all worker domains and
   4-worker throughput collapses to ~20% of 1-worker; the server fix
   (minor heap scaled with worker count, here and in bin/obda.ml) is what
   the final check holds in place.

   Run: dune exec bench/serve_load.exe            (120 conns, 3s/leg)
        dune exec bench/serve_load.exe -- --conns 32 --duration 1.0 *)

open Tgd_logic
module P = Tgd_serve.Protocol
module Server = Tgd_serve.Server
module Net = Tgd_serve.Net
module Json = Tgd_serve.Json

let scale = 300
let tags = [| 1; 2; 3; 4; 5; 6; 7 |]

let mk_server () =
  let srv = Server.create () in
  let data = Tgd_gen.University.generate_data (Tgd_gen.Rng.create 0xE16) ~scale in
  ignore
    (Tgd_serve.Registry.register (Server.registry srv) ~name:"uni" ~facts:data
       Tgd_gen.University.ontology);
  srv

(* Alpha-rename per tag, exactly as E16 does. *)
let qstr ~tag q =
  let renaming =
    Subst.of_list
      (Symbol.Set.elements (Cq.vars q)
      |> List.map (fun x -> (x, Term.var (Printf.sprintf "%s_%d" (Symbol.name x) tag))))
  in
  let q' =
    Cq.make ~name:q.Cq.name
      ~answer:(Subst.apply_terms renaming q.Cq.answer)
      ~body:(Subst.apply_atoms renaming q.Cq.body)
  in
  Format.asprintf "%a" Tgd_parser.Printer.query q'

(* ------------------------------------------------------------------ *)
(* Workload table: one entry per (query, tag) variant.                  *)

type variant = {
  line_suffix : string;  (* ,"op":"execute",... }\n  — prepend {"id":N *)
  expected_answers : string;  (* "answers":[...],"exact"  — must appear in the response *)
}

let build_variants () =
  (* The sequential oracle: the same registration, queried through
     Server.handle on this thread. Whatever it answers is, by definition,
     the sequential path the concurrent server must match byte-for-byte. *)
  let oracle = mk_server () in
  let queries = Array.of_list Tgd_gen.University.queries in
  let variants =
    Array.map
      (fun q ->
        Array.map
          (fun tag ->
            let s = qstr ~tag q in
            let fields =
              match Server.handle oracle (P.Execute { ontology = "uni"; query = s; budget = None; target = None })
              with
              | Ok fields -> fields
              | Error (kind, msg) -> failwith ("oracle: " ^ kind ^ ": " ^ msg)
            in
            let answers =
              match List.assoc_opt "answers" fields with
              | Some j -> Json.to_string j
              | None -> failwith "oracle: no answers field"
            in
            {
              line_suffix =
                Printf.sprintf {|,"op":"execute","ontology":"uni","query":%s}|}
                  (Json.to_string (Json.String s))
                ^ "\n";
              expected_answers = Printf.sprintf {|"answers":%s,"exact"|} answers;
            })
          tags)
      queries
  in
  Server.shutdown oracle;
  (Array.length queries, variants)

(* Zipf(s=1) over query indices, deterministic per leg. *)
let zipf_sampler ~n_queries ~seed =
  let weights = Array.init n_queries (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let rng = Tgd_gen.Rng.create seed in
  fun () ->
    let x = Tgd_gen.Rng.float rng *. total in
    let rec go i acc =
      if i = n_queries - 1 then i
      else if acc +. weights.(i) >= x then i
      else go (i + 1) (acc +. weights.(i))
    in
    go 0 0.0

(* ------------------------------------------------------------------ *)
(* Client driver.                                                      *)

type conn = {
  fd : Unix.file_descr;
  mutable outbuf : string;
  mutable outpos : int;
  inbuf : Buffer.t;
  mutable outstanding : (int * string * float) option;
      (* id, expected answers fragment, send time *)
}

type leg_result = {
  workers : int;
  completed : int;
  elapsed_s : float;
  rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  shed : int;
  mismatches : int;
  minor_heap_words : int;
}

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i j = j = nn || (hay.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = if i + nn > nh then -1 else if at i 0 then i else go (i + 1) in
  go 0

let minor_words_for workers = min (16 * 1024 * 1024) (1024 * 1024 * max 1 workers)

let connect_retry path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.02);
      go ()
  in
  go ()

let run_leg ~workers ~conns:n_conns ~duration ~n_queries ~variants =
  let sockpath =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_load_%d_w%d.sock" (Unix.getpid ()) workers)
  in
  (* The child inherits the stdout buffer; flush so it can't replay it. *)
  flush stdout;
  match Unix.fork () with
  | 0 ->
    (* Server child: its own process, its own GC tuning — exactly what
       `obda serve --listen` does at startup. *)
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor_words_for workers };
    let srv = mk_server () in
    let listeners = [ Net.listen (Net.Unix_path sockpath) ] in
    Net.serve ~workers
      ~queue_bound:(n_conns + 32)
      ~max_inflight:(n_conns + 32)
      ~max_clients:(n_conns + 8)
      srv ~listeners;
    Server.shutdown srv;
    Unix._exit 0
  | pid ->
    let sample = zipf_sampler ~n_queries ~seed:0x5317 in
    let conns =
      Array.init n_conns (fun _ ->
          let fd = connect_retry sockpath in
          Unix.set_nonblock fd;
          { fd; outbuf = ""; outpos = 0; inbuf = Buffer.create 512; outstanding = None })
    in
    let by_fd = Hashtbl.create (2 * n_conns) in
    Array.iter (fun c -> Hashtbl.replace by_fd c.fd c) conns;
    let next_id = ref 0 in
    let completed = ref 0 in
    let shed = ref 0 in
    let mismatches = ref 0 in
    let mismatch_example = ref None in
    let lats = ref (Array.make 4096 0.0) in
    let n_lats = ref 0 in
    let record_lat l =
      if !n_lats = Array.length !lats then begin
        let bigger = Array.make (2 * !n_lats) 0.0 in
        Array.blit !lats 0 bigger 0 !n_lats;
        lats := bigger
      end;
      !lats.(!n_lats) <- l;
      incr n_lats
    in
    let issue ~timed c =
      let qi = sample () in
      let tag_i = !next_id mod Array.length tags in
      let v = variants.(qi).(tag_i) in
      let id = !next_id in
      incr next_id;
      let line = Printf.sprintf {|{"id":%d|} id ^ v.line_suffix in
      c.outbuf <- line;
      c.outpos <- 0;
      c.outstanding <- Some (id, v.expected_answers, if timed then Unix.gettimeofday () else 0.0)
    in
    let mismatch line note =
      incr mismatches;
      if !mismatch_example = None then mismatch_example := Some (note ^ ": " ^ line)
    in
    let on_line ~timed c line =
      match c.outstanding with
      | None -> mismatch line "unexpected response (nothing outstanding)"
      | Some (id, expected, t0) ->
        c.outstanding <- None;
        if timed then begin
          record_lat (Unix.gettimeofday () -. t0);
          incr completed
        end;
        let idp = Printf.sprintf {|{"id":%d,|} id in
        if String.length line < String.length idp || String.sub line 0 (String.length idp) <> idp
        then mismatch line (Printf.sprintf "response id mismatch (wanted %d)" id)
        else if
          find_sub line {|"kind":"overloaded"|} >= 0
          || find_sub line {|"kind":"quota_exceeded"|} >= 0
        then incr shed
        else if find_sub line expected < 0 then mismatch line "answers differ from sequential path"
    in
    let read_buf = Bytes.create 65536 in
    let drain_lines ~timed c =
      (* Split complete lines out of the connection's accumulator. *)
      let s = Buffer.contents c.inbuf in
      let n = String.length s in
      let start = ref 0 in
      (try
         while true do
           let i = String.index_from s !start '\n' in
           on_line ~timed c (String.sub s !start (i - !start));
           start := i + 1
         done
       with Not_found -> ());
      if !start > 0 then begin
        Buffer.clear c.inbuf;
        Buffer.add_substring c.inbuf s !start (n - !start)
      end
    in
    (* One driver pass: write what's writable, read what's readable. *)
    let step ~timed () =
      let rds = ref [] and wrs = ref [] in
      Array.iter
        (fun c ->
          if c.outstanding <> None then begin
            rds := c.fd :: !rds;
            if c.outpos < String.length c.outbuf then wrs := c.fd :: !wrs
          end)
        conns;
      if !rds = [] && !wrs = [] then false
      else begin
        let r, w, _ = Unix.select !rds !wrs [] 1.0 in
        List.iter
          (fun fd ->
            let c = Hashtbl.find by_fd fd in
            match
              Unix.write_substring c.fd c.outbuf c.outpos (String.length c.outbuf - c.outpos)
            with
            | n -> c.outpos <- c.outpos + n
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
          w;
        List.iter
          (fun fd ->
            let c = Hashtbl.find by_fd fd in
            match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
            | 0 ->
              c.outstanding <- None;
              mismatch "" "server closed connection mid-request"
            | n ->
              Buffer.add_subbytes c.inbuf read_buf 0 n;
              drain_lines ~timed c
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
          r;
        true
      end
    in
    let drain ~timed ~hard_deadline =
      while
        Array.exists (fun c -> c.outstanding <> None) conns
        && Unix.gettimeofday () < hard_deadline
        && step ~timed ()
      do
        ()
      done
    in
    (* Warmup round (untimed): every connection completes one request, which
       also warms the server's prepared cache through the canonical key. *)
    Array.iter (fun c -> issue ~timed:false c) conns;
    drain ~timed:false ~hard_deadline:(Unix.gettimeofday () +. 60.0);
    (* Timed closed loop. *)
    let t_start = Unix.gettimeofday () in
    let deadline = t_start +. duration in
    Array.iter (fun c -> issue ~timed:true c) conns;
    let rec loop () =
      let now = Unix.gettimeofday () in
      if now < deadline then begin
        ignore (step ~timed:true ());
        Array.iter (fun c -> if c.outstanding = None then issue ~timed:true c) conns;
        loop ()
      end
    in
    loop ();
    drain ~timed:true ~hard_deadline:(deadline +. 60.0);
    let t_end = Unix.gettimeofday () in
    if Array.exists (fun c -> c.outstanding <> None) conns then
      mismatch "" "timed out waiting for outstanding responses";
    Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
    (* Stop the server over a fresh connection; reap the child. *)
    (let fd = connect_retry sockpath in
     let msg = {|{"id":0,"op":"shutdown"}|} ^ "\n" in
     ignore (Unix.write_substring fd msg 0 (String.length msg));
     ignore (Unix.read fd read_buf 0 (Bytes.length read_buf));
     Unix.close fd);
    ignore (Unix.waitpid [] pid);
    (match !mismatch_example with
    | Some ex ->
      Printf.printf "  first mismatch: %s\n" (String.sub ex 0 (min 200 (String.length ex)))
    | None -> ());
    let lats = Array.sub !lats 0 !n_lats in
    Array.sort compare lats;
    let pct p =
      if !n_lats = 0 then 0.0
      else lats.(min (!n_lats - 1) (int_of_float (p *. float_of_int !n_lats)))
    in
    let elapsed = t_end -. t_start in
    {
      workers;
      completed = !completed;
      elapsed_s = elapsed;
      rps = (if elapsed > 0.0 then float_of_int !completed /. elapsed else 0.0);
      p50_ms = pct 0.5 *. 1000.0;
      p95_ms = pct 0.95 *. 1000.0;
      p99_ms = pct 0.99 *. 1000.0;
      shed = !shed;
      mismatches = !mismatches;
      minor_heap_words = minor_words_for workers;
    }

(* ------------------------------------------------------------------ *)

let check label ~expected ~got =
  Printf.printf "  %-58s expected: %-8s measured: %-8s %s\n" label expected got
    (if expected = got then "[ok]" else "[MISMATCH]");
  flush stdout

let () =
  let conns = ref 120 in
  let duration = ref 3.0 in
  let out = ref "BENCH_serve.json" in
  let workers = ref "1,4" in
  Arg.parse
    [
      ("--conns", Arg.Set_int conns, "N  concurrent client connections (default 120)");
      ("--duration", Arg.Set_float duration, "S  timed window per leg in seconds (default 3.0)");
      ("--out", Arg.Set_string out, "FILE  bench JSON output (default BENCH_serve.json)");
      ("--workers", Arg.Set_string workers, "LIST  comma-separated worker counts (default 1,4)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_load: closed-loop load bench for the network front end";
  let worker_legs =
    String.split_on_char ',' !workers |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map int_of_string
  in
  Printf.printf
    "E16v2 (serve_load): closed-loop net front end, %d connections, Zipf(s=1), %gs/leg\n" !conns
    !duration;
  let n_queries, variants = build_variants () in
  let results =
    List.map
      (fun w ->
        let r = run_leg ~workers:w ~conns:!conns ~duration:!duration ~n_queries ~variants in
        Printf.printf
          "  workers=%d: %d req in %.2fs -> %.0f rps   p50=%.2fms p95=%.2fms p99=%.2fms   (%d \
           shed, %d mismatches)\n"
          r.workers r.completed r.elapsed_s r.rps r.p50_ms r.p95_ms r.p99_ms r.shed r.mismatches;
        flush stdout;
        r)
      worker_legs
  in
  let total_mismatches = List.fold_left (fun a r -> a + r.mismatches) 0 results in
  let total_shed = List.fold_left (fun a r -> a + r.shed) 0 results in
  check "answers byte-identical to the sequential path" ~expected:"yes"
    ~got:(if total_mismatches = 0 then "yes" else "no");
  check "no responses shed (admission sized to the fleet)" ~expected:"yes"
    ~got:(if total_shed = 0 then "yes" else "no");
  (match
     ( List.find_opt (fun r -> r.workers = 1) results,
       List.find_opt (fun r -> r.workers = 4) results )
   with
  | Some w1, Some w4 ->
    let ratio = if w1.rps > 0.0 then w4.rps /. w1.rps else 0.0 in
    Printf.printf "  scaling w4/w1: %.2f\n" ratio;
    check "4-worker rps >= single-worker rps (regression gate)" ~expected:"yes"
      ~got:(if ratio >= 0.95 then "yes" else "no")
  | _ -> ());
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench_serve/v2\",\n\
    \  \"host_cores\": %d,\n\
    \  \"workload\": { \"scale\": %d, \"distinct_queries\": %d, \"tag_variants\": %d, \"zipf_s\": \
     1.0,\n\
    \                \"connections\": %d, \"closed_loop\": true, \"duration_s\": %g },\n\
    \  \"legs\": [\n"
    (Domain.recommended_domain_count ())
    scale n_queries (Array.length tags) !conns !duration;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"workers\": %d, \"requests\": %d, \"elapsed_s\": %.3f, \"rps\": %.1f,\n\
        \      \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n\
        \      \"shed\": %d, \"mismatches\": %d, \"minor_heap_words\": %d }%s\n"
        r.workers r.completed r.elapsed_s r.rps r.p50_ms r.p95_ms r.p99_ms r.shed r.mismatches
        r.minor_heap_words
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" !out;
  if total_mismatches > 0 then exit 1
