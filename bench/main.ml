(* Benchmark and experiment harness.

   Part 1 regenerates every figure/claim of the paper as a table
   (experiments E1-E9 of DESIGN.md, recorded in EXPERIMENTS.md), printing
   paper-expected vs measured values. Part 2 runs Bechamel timing groups,
   one per experiment that has a timing dimension.

   Run with: dune exec bench/main.exe            (full: reports + timings)
             dune exec bench/main.exe -- quick   (reports only) *)

open Tgd_logic

let section title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n"

let row fmt = Printf.printf fmt

let check label ~expected ~got =
  Printf.printf "  %-58s paper: %-8s measured: %-8s %s\n" label expected got
    (if expected = got then "[ok]" else "[MISMATCH]")

let time_once f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Median-of-k wall-clock timing for the report tables (Bechamel handles the
   precise micro-timings separately). *)
let time_median ?(k = 5) f =
  let samples = List.init k (fun _ -> snd (time_once f)) in
  List.nth (List.sort compare samples) (k / 2)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the position graph of Example 1; SWR holds.          *)

let e1 () =
  section "E1 (Figure 1): position graph of Example 1, SWR verdict";
  let p = Tgd_core.Paper_examples.example1 in
  let g = Tgd_core.Position_graph.build p in
  let edges = Tgd_core.Position_graph.edge_list g in
  check "edge list matches Figure 1" ~expected:"yes"
    ~got:(if edges = Tgd_core.Paper_examples.figure1_edges then "yes" else "no");
  check "nodes" ~expected:"7" ~got:(string_of_int (Tgd_core.Position_graph.G.n_nodes g));
  let v = Tgd_core.Swr.check p in
  check "set of simple TGDs" ~expected:"yes" ~got:(if v.Tgd_core.Swr.simple then "yes" else "no");
  check "SWR (Theorem 1 => FO-rewritable)" ~expected:"yes"
    ~got:(if v.Tgd_core.Swr.swr then "yes" else "no");
  List.iter (fun (s, d, l) -> row "    %s -> %s%s\n" s d (if l = "" then "" else " [" ^ l ^ "]")) edges

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 — the position graph misses Example 2's danger.        *)

let e2 () =
  section "E2 (Figure 2): position graph of Example 2 misses the danger";
  let p = Tgd_core.Paper_examples.example2 in
  let g = Tgd_core.Position_graph.build p in
  check "position nodes" ~expected:"10" ~got:(string_of_int (Tgd_core.Position_graph.G.n_nodes g));
  check "dangerous (m+s) cycle in the position graph" ~expected:"no"
    ~got:(if Tgd_core.Swr.dangerous_cycle_in_graph g then "yes" else "no");
  (* The paper's figure draws the rewriting-step edges only; our
     generalized Definition 4 also adds the plain 1(a) feedback edges, so we
     get harmless cycles where the figure has none — the verdict ("no
     dangerous cycle, yet not FO-rewritable") is the same. *)
  let config = { Tgd_rewrite.Rewrite.default_config with max_cqs = 400 } in
  let r =
    Tgd_rewrite.Rewrite.ucq ~config p Tgd_core.Paper_examples.example2_query
  in
  check "rewriting of q() :- r(a,X) terminates" ~expected:"no"
    ~got:
      (match r.Tgd_rewrite.Rewrite.outcome with
      | Tgd_rewrite.Rewrite.Complete -> "yes"
      | Tgd_rewrite.Rewrite.Truncated _ -> "no");
  row "    unbounded chain: %d CQs generated down to depth %d before the budget\n"
    r.Tgd_rewrite.Rewrite.stats.Tgd_rewrite.Rewrite.generated
    r.Tgd_rewrite.Rewrite.stats.Tgd_rewrite.Rewrite.max_depth

(* ------------------------------------------------------------------ *)
(* E3: Figure 3 — the P-node graph detects Example 2's dangerous cycle. *)

let e3 () =
  section "E3 (Figure 3): P-node graph of Example 2 detects the dangerous cycle";
  let w = Tgd_core.Wr.check Tgd_core.Paper_examples.example2 in
  let g = w.Tgd_core.Wr.graph.Tgd_core.P_node_graph.graph in
  check "dangerous cycle (s-, m-, d-edges, no i-edge)" ~expected:"yes"
    ~got:(if w.Tgd_core.Wr.dangerous then "yes" else "no");
  check "WR" ~expected:"no" ~got:(if w.Tgd_core.Wr.wr then "yes" else "no");
  check "P-atom s(z,z,x1) of Figure 3 appears" ~expected:"yes"
    ~got:
      (if
         List.exists
           (fun (n : Tgd_core.P_node.t) ->
             Tgd_core.P_atom.to_string n.Tgd_core.P_node.atom = "s(z,z,x1)")
           (Tgd_core.P_node_graph.G.nodes g)
       then "yes"
       else "no");
  check "simple-cycle reading agrees" ~expected:"yes"
    ~got:(match Tgd_core.Wr.check_exact g with Some true -> "yes" | _ -> "no");
  row "    graph size: %d nodes, %d edges\n" (Tgd_core.P_node_graph.G.n_nodes g)
    (Tgd_core.P_node_graph.G.n_edges g)

(* ------------------------------------------------------------------ *)
(* E4: Example 3 — outside all prior classes, FO-rewritable, WR.       *)

let e4 () =
  section "E4 (Example 3): beyond all prior classes, yet WR and FO-rewritable";
  let p = Tgd_core.Paper_examples.example3 in
  let r = Tgd_core.Classifier.classify p in
  check "simple" ~expected:"no" ~got:(if r.Tgd_core.Classifier.simple then "yes" else "no");
  check "linear" ~expected:"no" ~got:(if r.Tgd_core.Classifier.linear then "yes" else "no");
  check "multilinear" ~expected:"no"
    ~got:(if r.Tgd_core.Classifier.multilinear then "yes" else "no");
  check "sticky" ~expected:"no" ~got:(if r.Tgd_core.Classifier.sticky then "yes" else "no");
  check "sticky-join" ~expected:"no"
    ~got:(if r.Tgd_core.Classifier.sticky_join then "yes" else "no");
  check "SWR" ~expected:"no" ~got:(if r.Tgd_core.Classifier.swr then "yes" else "no");
  check "WR" ~expected:"yes" ~got:(if r.Tgd_core.Classifier.wr then "yes" else "no");
  (* FO-rewritability in action: every atomic rewriting terminates. *)
  let all_complete =
    List.for_all
      (fun (pred, arity) ->
        let vars = List.init arity (fun i -> Term.var (Printf.sprintf "X%d" i)) in
        let q = Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make pred vars ] in
        match (Tgd_rewrite.Rewrite.ucq p q).Tgd_rewrite.Rewrite.outcome with
        | Tgd_rewrite.Rewrite.Complete -> true
        | Tgd_rewrite.Rewrite.Truncated _ -> false)
      (Program.predicates p)
  in
  check "all atomic rewritings terminate" ~expected:"yes" ~got:(if all_complete then "yes" else "no")

(* ------------------------------------------------------------------ *)
(* E5: subsumption (Section 5): SWR contains the prior simple classes. *)

let e5 () =
  section "E5 (Section 5): SWR subsumes Linear/Multilinear/Sticky/Sticky-Join (simple TGDs)";
  let rng = Tgd_gen.Rng.create 20140622 in
  let corpus name gen checker n =
    let in_class = ref 0 and swr = ref 0 in
    for i = 1 to n do
      match gen i with
      | None -> ()
      | Some p ->
        if checker p then begin
          incr in_class;
          if (Tgd_core.Swr.check p).Tgd_core.Swr.swr then incr swr
        end
    done;
    row "  %-14s %4d sets in class, %4d of them SWR  %s\n" name !in_class !swr
      (if !in_class = !swr then "[ok: 100%]" else "[SUBSUMPTION VIOLATED]")
  in
  corpus "linear"
    (fun i ->
      Some (Tgd_gen.Gen_tgd.simple_linear ~name:(Printf.sprintf "l%d" i) rng ~n_rules:8 ~n_predicates:5 ~max_arity:3))
    Tgd_classes.Linear.check 100;
  corpus "multilinear"
    (fun i ->
      Some (Tgd_gen.Gen_tgd.simple_multilinear ~name:(Printf.sprintf "m%d" i) rng ~n_rules:5 ~n_predicates:4 ~arity:3))
    Tgd_classes.Multilinear.check 100;
  let sample checker _ =
    Tgd_gen.Gen_tgd.sample_in_class checker (fun () ->
        Tgd_gen.Gen_tgd.random_simple_program rng
          { Tgd_gen.Gen_tgd.default_config with n_rules = 5; n_predicates = 4; max_body_atoms = 2 })
  in
  corpus "sticky" (sample Tgd_classes.Sticky.sticky) Tgd_classes.Sticky.sticky 100;
  corpus "sticky-join" (sample Tgd_classes.Sticky.sticky_join) Tgd_classes.Sticky.sticky_join 100;
  (* DL-Lite: the motivating FO-rewritable language lands inside SWR. *)
  let ok = ref 0 in
  for _ = 1 to 100 do
    let tbox = Tgd_gen.Dl_lite.random_tbox rng ~n_concepts:6 ~n_roles:4 ~n_axioms:12 in
    if (Tgd_core.Swr.check (Tgd_gen.Dl_lite.to_program tbox)).Tgd_core.Swr.swr then incr ok
  done;
  row "  %-14s %4d sets in class, %4d of them SWR  %s\n" "dl-lite" 100 !ok
    (if !ok = 100 then "[ok: 100%]" else "[SUBSUMPTION VIOLATED]")

(* ------------------------------------------------------------------ *)
(* E6: the SWR check is PTIME — scaling table.                         *)

let e6 () =
  section "E6 (PTIME claim): SWR check scaling with |P|";
  row "  %-10s %8s %8s %8s %12s\n" "family" "|P|" "nodes" "edges" "t_check";
  let families =
    [
      ("chain", fun n -> Tgd_gen.Gen_tgd.chain ?name:None ~depth:n);
      ("star", fun n -> Tgd_gen.Gen_tgd.wide_star ?name:None ~width:n);
      ( "dl-lite",
        fun n ->
          let rng = Tgd_gen.Rng.create (1000 + n) in
          Tgd_gen.Dl_lite.to_program
            (Tgd_gen.Dl_lite.random_tbox rng ~n_concepts:(n / 2) ~n_roles:(n / 4) ~n_axioms:n) );
    ]
  in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let p = make n in
          let t = time_median (fun () -> ignore (Tgd_core.Swr.check p)) in
          let g = Tgd_core.Position_graph.build p in
          row "  %-10s %8d %8d %8d %10.3fms\n" name n
            (Tgd_core.Position_graph.G.n_nodes g)
            (Tgd_core.Position_graph.G.n_edges g)
            (t *. 1000.))
        [ 10; 20; 40; 80; 160; 320 ])
    families

(* ------------------------------------------------------------------ *)
(* E7: the WR check is heavier (PSPACE claim) — node growth.           *)

let e7 () =
  section "E7 (PSPACE claim): P-node graph growth with |P|";
  row "  %-10s %8s %10s %10s %12s %10s\n" "family" "|P|" "p-nodes" "p-edges" "t_check" "complete";
  let families =
    [
      ("chain", fun n -> Tgd_gen.Gen_tgd.chain ?name:None ~depth:n);
      ( "dl-lite",
        fun n ->
          let rng = Tgd_gen.Rng.create (2000 + n) in
          Tgd_gen.Dl_lite.to_program
            (Tgd_gen.Dl_lite.random_tbox rng ~n_concepts:(n / 2) ~n_roles:(n / 4) ~n_axioms:n) );
      ( "random",
        fun n ->
          let rng = Tgd_gen.Rng.create (3000 + n) in
          Tgd_gen.Gen_tgd.random_program ~name:"rand" rng
            { Tgd_gen.Gen_tgd.default_config with n_rules = n; n_predicates = max 3 (n / 3); repeat_rate = 0.2 } );
    ]
  in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let p = make n in
          let (w : Tgd_core.Wr.verdict), t =
            time_once (fun () -> Tgd_core.Wr.check ~max_nodes:30_000 p)
          in
          let g = w.Tgd_core.Wr.graph.Tgd_core.P_node_graph.graph in
          row "  %-10s %8d %10d %10d %10.3fms %10s\n" name n
            (Tgd_core.P_node_graph.G.n_nodes g)
            (Tgd_core.P_node_graph.G.n_edges g)
            (t *. 1000.)
            (if w.Tgd_core.Wr.complete then "yes" else "TRUNC"))
        [ 10; 20; 40; 80 ])
    families

(* ------------------------------------------------------------------ *)
(* E8: rewriting+SQL-eval vs chase materialization (Definition 1).     *)

let e8 () =
  section "E8 (Definition 1): rewriting+evaluation = chase materialization, and who is faster";
  let ontology = Tgd_gen.University.ontology in
  row "  %-8s %-22s %8s %9s %12s %12s %9s\n" "scale" "query" "answers" "disjuncts" "t_rw+eval"
    "t_chase+eval" "agree";
  List.iter
    (fun scale ->
      let rng = Tgd_gen.Rng.create (4000 + scale) in
      let data = Tgd_gen.University.generate_data rng ~scale in
      (* chase once per scale, shared by the queries *)
      let chased, t_chase =
        time_once (fun () ->
            let copy = Tgd_db.Instance.copy data in
            ignore (Tgd_chase.Chase.run ontology copy);
            copy)
      in
      List.iter
        (fun q ->
          let rewriting, t_rw =
            time_once (fun () -> Tgd_rewrite.Rewrite.ucq ontology q)
          in
          let answers_rw, t_eval =
            time_once (fun () ->
                Tgd_db.Eval.ucq data rewriting.Tgd_rewrite.Rewrite.ucq
                |> List.filter (fun t -> not (Tgd_db.Tuple.has_null t)))
          in
          let answers_ch, t_ceval =
            time_once (fun () ->
                Tgd_db.Eval.cq chased q |> List.filter (fun t -> not (Tgd_db.Tuple.has_null t)))
          in
          let agree =
            List.length answers_rw = List.length answers_ch
            && List.for_all2 Tgd_db.Tuple.equal answers_rw answers_ch
          in
          row "  %-8d %-22s %8d %9d %10.2fms %10.2fms %9s\n" scale q.Cq.name
            (List.length answers_rw)
            (List.length rewriting.Tgd_rewrite.Rewrite.ucq)
            ((t_rw +. t_eval) *. 1000.)
            ((t_chase +. t_ceval) *. 1000.)
            (if agree then "yes" else "NO"))
        Tgd_gen.University.queries;
      row "  (scale %d: %d facts, one-off chase %0.2fms)\n" scale (Tgd_db.Instance.cardinality data)
        (t_chase *. 1000.))
    [ 100; 1000; 5000 ]

(* ------------------------------------------------------------------ *)
(* E9: rewriting sizes, with and without subsumption pruning.          *)

let e9 () =
  section "E9 (ablation): UCQ rewriting size with/without containment pruning";
  let cases =
    List.map (fun q -> ("university", Tgd_gen.University.ontology, q)) Tgd_gen.University.queries
    @ [
        ( "example1",
          Tgd_core.Paper_examples.example1,
          Cq.make ~name:"q_r" ~answer:[ Term.var "X" ]
            ~body:[ Atom.of_strings "r" [ Term.var "X"; Term.var "Y" ] ] );
        ( "example3",
          Tgd_core.Paper_examples.example3,
          Cq.make ~name:"q_s" ~answer:[ Term.var "X" ]
            ~body:[ Atom.of_strings "s" [ Term.var "X"; Term.var "Y"; Term.var "Z" ] ] );
      ]
  in
  row "  %-12s %-22s %10s %10s %12s %12s\n" "ontology" "query" "pruned" "unpruned" "gen(pruned)"
    "gen(unpr.)";
  List.iter
    (fun (name, p, q) ->
      let pruned = Tgd_rewrite.Rewrite.ucq p q in
      let unpruned =
        Tgd_rewrite.Rewrite.ucq
          ~config:{ Tgd_rewrite.Rewrite.default_config with prune_subsumed = false }
          p q
      in
      row "  %-12s %-22s %10d %10d %12d %12d\n" name q.Cq.name
        (List.length pruned.Tgd_rewrite.Rewrite.ucq)
        (List.length unpruned.Tgd_rewrite.Rewrite.ucq)
        pruned.Tgd_rewrite.Rewrite.stats.Tgd_rewrite.Rewrite.generated
        unpruned.Tgd_rewrite.Rewrite.stats.Tgd_rewrite.Rewrite.generated)
    cases

(* ------------------------------------------------------------------ *)
(* E10: the OBDA pipeline — rewriting + mapping unfolding vs            *)
(* materialization.                                                     *)

let registrar_mappings =
  let v = Term.var and c = Term.const in
  let atom p args = Atom.of_strings p args in
  Tgd_obda.Mapping.
    [
      make ~name:"m_prof"
        ~source:[ atom "emp_record" [ v "X"; v "D"; c "prof" ] ]
        ~target:(atom "professor" [ v "X" ]);
      make ~name:"m_lect"
        ~source:[ atom "emp_record" [ v "X"; v "D"; c "lect" ] ]
        ~target:(atom "lecturer" [ v "X" ]);
      make ~name:"m_works"
        ~source:[ atom "emp_record" [ v "X"; v "D"; v "R" ] ]
        ~target:(atom "works_for" [ v "X"; v "D" ]);
      make ~name:"m_under"
        ~source:[ atom "enrollment" [ v "S"; v "C" ] ]
        ~target:(atom "undergraduate" [ v "S" ]);
      make ~name:"m_takes"
        ~source:[ atom "enrollment" [ v "S"; v "C" ] ]
        ~target:(atom "takes_course" [ v "S"; v "C" ]);
    ]

let registrar_source rng ~employees ~enrollments =
  let inst = Tgd_db.Instance.create () in
  let add pred vals =
    ignore
      (Tgd_db.Instance.add_fact inst (Symbol.intern pred)
         (Array.of_list (List.map Tgd_db.Value.const vals)))
  in
  for i = 0 to employees - 1 do
    add "emp_record"
      [
        Printf.sprintf "e%d" i;
        Printf.sprintf "d%d" (Tgd_gen.Rng.int rng 10);
        (if Tgd_gen.Rng.bool rng 0.5 then "prof" else "lect");
      ]
  done;
  for i = 0 to enrollments - 1 do
    add "enrollment"
      [ Printf.sprintf "s%d" (i mod (max 1 (enrollments / 3))); Printf.sprintf "c%d" (Tgd_gen.Rng.int rng 40) ]
  done;
  inst

let e10 () =
  section "E10 (OBDA pipeline): rewriting + mapping unfolding over relational sources";
  let sys =
    Tgd_obda.Obda_system.make ~ontology:Tgd_gen.University.ontology ~mappings:registrar_mappings ()
  in
  let v = Term.var in
  let atom p args = Atom.of_strings p args in
  let queries =
    [
      Cq.make ~name:"persons" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ];
      Cq.make ~name:"faculty_works" ~answer:[ v "X"; v "D" ]
        ~body:[ atom "faculty" [ v "X" ]; atom "works_for" [ v "X"; v "D" ] ];
      Cq.make ~name:"classmates" ~answer:[ v "X"; v "Y" ]
        ~body:[ atom "takes_course" [ v "X"; v "C" ]; atom "takes_course" [ v "Y"; v "C" ] ];
    ]
  in
  row "  %-8s %-16s %10s %9s %12s %14s %7s\n" "scale" "query" "unfolded" "answers" "t_virtual"
    "t_materialize" "agree";
  List.iter
    (fun scale ->
      let rng = Tgd_gen.Rng.create (7000 + scale) in
      let src = registrar_source rng ~employees:scale ~enrollments:(3 * scale) in
      List.iter
        (fun q ->
          let a, t_virtual = time_once (fun () -> Tgd_obda.Obda_system.answer sys ~source:src q) in
          let (mat, _), t_mat =
            time_once (fun () -> Tgd_obda.Obda_system.answer_materialized sys ~source:src q)
          in
          let agree =
            List.length a.Tgd_obda.Obda_system.tuples = List.length mat
            && List.for_all2 Tgd_db.Tuple.equal a.Tgd_obda.Obda_system.tuples mat
          in
          row "  %-8d %-16s %10d %9d %10.2fms %12.2fms %7s\n" scale q.Cq.name
            (List.length a.Tgd_obda.Obda_system.source_ucq)
            (List.length a.Tgd_obda.Obda_system.tuples)
            (t_virtual *. 1000.) (t_mat *. 1000.)
            (if agree then "yes" else "NO"))
        queries)
    [ 100; 1000 ]

(* ------------------------------------------------------------------ *)
(* E11: Section 7 — approximation for intractable sets.                 *)

let e11 () =
  section "E11 (Section 7): interval approximation on non-WR programs";
  let rng = Tgd_gen.Rng.create 71 in
  let total = ref 0 and wr_already = ref 0 and exact = ref 0 in
  let kept_rules = ref 0 and all_rules = ref 0 in
  let v = Term.var in
  for i = 1 to 40 do
    let p =
      Tgd_gen.Gen_tgd.random_program ~name:(Printf.sprintf "p%d" i) rng
        {
          Tgd_gen.Gen_tgd.default_config with
          n_rules = 6;
          n_predicates = 4;
          repeat_rate = 0.3;
          existential_rate = 0.4;
        }
    in
    if (Tgd_core.Wr.check ~max_nodes:5_000 p).Tgd_core.Wr.wr then incr wr_already
    else begin
      incr total;
      let subset, removed = Tgd_obda.Approximation.wr_subset ~max_nodes:5_000 p in
      kept_rules := !kept_rules + Program.size subset;
      all_rules := !all_rules + Program.size subset + List.length removed;
      let inst = Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:10 ~domain_size:6 in
      (* one atomic query per program *)
      let pred, arity = List.hd (Program.predicates p) in
      let vars = List.init arity (fun k -> v (Printf.sprintf "X%d" k)) in
      let q = Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make pred vars ] in
      let itv = Tgd_obda.Approximation.interval_answers p inst q in
      if itv.Tgd_obda.Approximation.exact then incr exact
    end
  done;
  row "  random programs drawn: 40 (%d already WR, skipped)\n" !wr_already;
  row "  non-WR programs approximated: %d\n" !total;
  row "  average WR-subset retention: %d/%d rules\n" !kept_rules !all_rules;
  row "  queries where lower = upper (answers known exactly): %d/%d\n" !exact !total

(* ------------------------------------------------------------------ *)
(* E12: new FO-rewritable DLs beyond DL-Lite (Section 6's closing        *)
(* claim).                                                               *)

let e12 () =
  section "E12 (Section 6): an extended DL beyond DL-Lite, classified by WR";
  (* The clinic exemplar: conjunction + qualified existentials. *)
  let p, ncs = Tgd_gen.Dl_ext.to_program Tgd_gen.Dl_ext.clinic in
  let r = Tgd_core.Classifier.classify p in
  row "  clinic TBox: %d TGDs, %d disjointness constraint(s)\n" (Program.size p) (List.length ncs);
  check "expressible in DL-Lite (would be linear+simple)" ~expected:"no"
    ~got:(if r.Tgd_core.Classifier.linear && r.Tgd_core.Classifier.simple then "yes" else "no");
  check "sticky / sticky-join" ~expected:"no"
    ~got:(if r.Tgd_core.Classifier.sticky || r.Tgd_core.Classifier.sticky_join then "yes" else "no");
  check "WR (the class that accepts it)" ~expected:"yes"
    ~got:(if r.Tgd_core.Classifier.wr then "yes" else "no");
  (* EL-style recursion must be rejected. *)
  let rec_p, _ =
    Tgd_gen.Dl_ext.to_program
      [ Tgd_gen.Dl_ext.Incl ([ Tgd_gen.Dl_ext.Exists_in (Tgd_gen.Dl_ext.Role "r", "a") ], Tgd_gen.Dl_ext.Atomic "a") ]
  in
  check "EL-style recursion exists r.A [= A accepted" ~expected:"no"
    ~got:(if (Tgd_core.Wr.check rec_p).Tgd_core.Wr.wr then "yes" else "no");
  (* Random TBoxes: WR coverage, and pattern-level coverage of the rest. *)
  let rng = Tgd_gen.Rng.create 2014 in
  let total = 50 in
  let wr = ref 0 and patterns_safe = ref 0 and non_wr = ref 0 in
  for _ = 1 to total do
    let tbox = Tgd_gen.Dl_ext.random_tbox rng ~n_concepts:6 ~n_roles:3 ~n_axioms:10 () in
    let p, _ = Tgd_gen.Dl_ext.to_program tbox in
    if (Tgd_core.Wr.check ~max_nodes:10_000 p).Tgd_core.Wr.wr then incr wr
    else begin
      incr non_wr;
      let cfg = { Tgd_rewrite.Rewrite.default_config with max_cqs = 3_000 } in
      let statuses = Tgd_core.Query_pattern.analyze_all ~config:cfg ~max_arity:3 p in
      let all_safe =
        List.for_all
          (fun (_, s) ->
            match s with Tgd_core.Query_pattern.Terminates _ -> true | Tgd_core.Query_pattern.Diverges _ -> false)
          statuses
      in
      if all_safe then incr patterns_safe
    end
  done;
  row "  random extended TBoxes: %d/%d accepted by WR\n" !wr total;
  row "  of the %d rejected, %d have every atomic query pattern terminating\n" !non_wr
    !patterns_safe;
  row "  (WR is a sufficient condition; the query-pattern analysis of [11]\n";
  row "   recovers per-query guarantees for the conservative rejections)\n"

(* ------------------------------------------------------------------ *)
(* E13: Section 6's incomparability remark, witnessed.                  *)

let e13 () =
  section "E13 (Section 6): SWR is incomparable with domain-restricted and acyclic-GRD";
  let r1 = Tgd_core.Classifier.classify Tgd_core.Paper_examples.example1 in
  check "Example 1: SWR" ~expected:"yes" ~got:(if r1.Tgd_core.Classifier.swr then "yes" else "no");
  check "Example 1: domain-restricted" ~expected:"no"
    ~got:(if r1.Tgd_core.Classifier.domain_restricted then "yes" else "no");
  check "Example 1: acyclic GRD" ~expected:"no"
    ~got:(if r1.Tgd_core.Classifier.acyclic_grd then "yes" else "no");
  let r2 = Tgd_core.Classifier.classify Tgd_core.Paper_examples.dr_agrd_not_swr in
  check "witness: simple" ~expected:"yes" ~got:(if r2.Tgd_core.Classifier.simple then "yes" else "no");
  check "witness: domain-restricted" ~expected:"yes"
    ~got:(if r2.Tgd_core.Classifier.domain_restricted then "yes" else "no");
  check "witness: acyclic GRD" ~expected:"yes"
    ~got:(if r2.Tgd_core.Classifier.acyclic_grd then "yes" else "no");
  check "witness: SWR" ~expected:"no" ~got:(if r2.Tgd_core.Classifier.swr then "yes" else "no")

(* ------------------------------------------------------------------ *)
(* E14: the containment engine trajectory — rewriting workloads timed,  *)
(* filter hit rates recorded, and everything dumped to                  *)
(* BENCH_rewrite.json so later PRs can diff against this one.           *)

(* A deep concept hierarchy a0 ⊑ a1 ⊑ ... ⊑ a_depth: the atomic query on
   the top concept rewrites into depth+1 single-atom disjuncts over
   pairwise-distinct predicates, so every kept-set subsumption check is
   decidable by the fingerprint pre-filter alone. *)
let deep_hierarchy ~depth =
  Program.make_exn ~name:"deep"
    (List.init depth (fun i ->
         Tgd.make ~name:(Printf.sprintf "h%d" i)
           ~body:[ Atom.of_strings (Printf.sprintf "a%d" i) [ Term.var "X" ] ]
           ~head:[ Atom.of_strings (Printf.sprintf "a%d" (i + 1)) [ Term.var "X" ] ]))

type rewrite_sample = {
  rw_name : string;
  rw_ms : float;
  rw_stats : Tgd_rewrite.Rewrite.stats;
  rw_outcome : string;
}

let bench_rewrite_workloads () =
  let open Tgd_rewrite in
  let v = Term.var in
  let atomic p pred =
    let arity = Option.get (Program.arity_of p (Symbol.intern pred)) in
    let vars = List.init arity (fun i -> v (Printf.sprintf "X%d" i)) in
    Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make (Symbol.intern pred) vars ]
  in
  let dlite40 =
    let rng = Tgd_gen.Rng.create 555 in
    Tgd_gen.Dl_lite.to_program (Tgd_gen.Dl_lite.random_tbox rng ~n_concepts:20 ~n_roles:10 ~n_axioms:40)
  in
  let deep300 = deep_hierarchy ~depth:300 in
  let chain120 = Tgd_gen.Gen_tgd.chain ?name:None ~depth:120 in
  let e2_config = { Rewrite.default_config with max_cqs = 400 } in
  let workloads =
    [
      ( "e2-budget-400",
        fun () ->
          Rewrite.ucq ~config:e2_config Tgd_core.Paper_examples.example2
            Tgd_core.Paper_examples.example2_query );
      ( "university-union",
        fun () -> Rewrite.ucq_of_union Tgd_gen.University.ontology Tgd_gen.University.queries );
      ("dl-lite-40-atomic", fun () -> Rewrite.ucq dlite40 (atomic dlite40 "a0"));
      ("deep-hierarchy-300", fun () -> Rewrite.ucq deep300 (atomic deep300 "a300"));
      ( "deep-role-chain-120",
        fun () ->
          Rewrite.ucq chain120
            (Cq.make ~name:"q" ~answer:[ v "X" ]
               ~body:[ Atom.of_strings "r120" [ v "X"; v "Y" ] ]) );
    ]
  in
  List.map
    (fun (name, run) ->
      Containment.reset_stats ();
      let r = ref (run ()) in
      let ms = time_median ~k:3 (fun () -> r := run ()) *. 1000. in
      let per_run = Containment.stats () in
      (* time_median ran it 3 more times: report per-run counter deltas. *)
      ignore per_run;
      {
        rw_name = name;
        rw_ms = ms;
        rw_stats = !r.Rewrite.stats;
        rw_outcome =
          (match !r.Rewrite.outcome with
          | Rewrite.Complete -> "complete"
          | Rewrite.Truncated d -> "truncated: " ^ Tgd_exec.Governor.diag_summary d);
      })
    workloads

let e14 () =
  section "E14 (engine): rewriting trajectory + containment filter hit rates";
  let samples = bench_rewrite_workloads () in
  row "  %-22s %10s %9s %6s %9s %9s %9s %10s\n" "workload" "t_rewrite" "generated" "kept"
    "cont.chk" "pruned" "hom.srch" "CQs/sec";
  List.iter
    (fun s ->
      let st = s.rw_stats in
      row "  %-22s %8.2fms %9d %6d %9d %9d %9d %10.0f\n" s.rw_name s.rw_ms
        st.Tgd_rewrite.Rewrite.generated st.Tgd_rewrite.Rewrite.kept
        st.Tgd_rewrite.Rewrite.containment_checks st.Tgd_rewrite.Rewrite.containment_pruned
        st.Tgd_rewrite.Rewrite.hom_searches
        (float_of_int st.Tgd_rewrite.Rewrite.generated /. (s.rw_ms /. 1000.)))
    samples;
  (* The deep hierarchy is the structural witness for the pruning claim:
     distinct predicates everywhere, so the filter must decide (almost)
     every check without a homomorphism search. *)
  let deep = List.find (fun s -> s.rw_name = "deep-hierarchy-300") samples in
  let st = deep.rw_stats in
  let ratio =
    float_of_int st.Tgd_rewrite.Rewrite.containment_checks
    /. float_of_int (max 1 st.Tgd_rewrite.Rewrite.hom_searches)
  in
  check "deep hierarchy: >= 5x fewer hom searches than checks" ~expected:"yes"
    ~got:(if ratio >= 5.0 then "yes" else "no");
  (* Ablation: minimizing the deep-hierarchy UCQ with the filtered+cached
     parallel engine vs the seed reference sweep. *)
  let deep300 = deep_hierarchy ~depth:300 in
  let q =
    Cq.make ~name:"q" ~answer:[ Term.var "X" ]
      ~body:[ Atom.of_strings "a300" [ Term.var "X" ] ]
  in
  let ucq = (Tgd_rewrite.Rewrite.ucq deep300 q).Tgd_rewrite.Rewrite.ucq in
  let t_engine = time_median ~k:3 (fun () -> ignore (Containment.minimize_ucq ucq)) *. 1000. in
  let t_reference =
    time_median ~k:3 (fun () -> ignore (Containment.minimize_ucq_reference ucq)) *. 1000.
  in
  let speedup = t_reference /. t_engine in
  row "  minimize_ucq on %d disjuncts: engine %.2fms, reference %.2fms (%.1fx)\n"
    (List.length ucq) t_engine t_reference speedup;
  check "minimize_ucq >= 2x faster than the reference sweep" ~expected:"yes"
    ~got:(if speedup >= 2.0 then "yes" else "no");
  (* The samples and the ablation row feed E21, which adds the Datalog
     backend's trajectory and writes the combined BENCH_rewrite.json. *)
  (samples, (List.length ucq, t_engine, t_reference, speedup))

(* ------------------------------------------------------------------ *)
(* E15: resource governance — graceful truncation on divergent inputs  *)

let e15 () =
  section "E15 (exec): governed truncation on non-terminating chase / rewriting";
  let module B = Tgd_exec.Budget in
  let module G = Tgd_exec.Governor in
  (* p(X) -> r(X,Y); r(X,Y) -> p(Y): an unbounded existential chain — the
     chase materializes a fresh null every round, forever. *)
  let v = Term.var in
  let divergent =
    Program.make_exn
      [
        Tgd.make ~name:"r1" ~body:[ Atom.of_strings "p" [ v "X" ] ]
          ~head:[ Atom.of_strings "r" [ v "X"; v "Y" ] ];
        Tgd.make ~name:"r2" ~body:[ Atom.of_strings "r" [ v "X"; v "Y" ] ]
          ~head:[ Atom.of_strings "p" [ v "Y" ] ];
      ]
  in
  let inst () = Tgd_db.Instance.of_atoms [ Atom.of_strings "p" [ Term.const "a" ] ] in
  let records = ref [] in
  (* Trigger-budget truncation: the chase winds down and reports how far it got. *)
  let gov = G.create ~budget:{ B.unlimited with B.chase_triggers = Some 200 } () in
  let stats, chase_s = time_once (fun () -> Tgd_chase.Chase.run ~gov divergent (inst ())) in
  let truncated, why =
    match stats.Tgd_chase.Chase.outcome with
    | Tgd_chase.Chase.Truncated d -> (true, G.diag_summary d)
    | Tgd_chase.Chase.Terminated -> (false, "terminated?!")
  in
  row "  chase under chase.triggers=200: %s in %.1fms (%d rounds, %d triggers, +%d facts)\n" why
    (chase_s *. 1000.) stats.Tgd_chase.Chase.rounds stats.Tgd_chase.Chase.triggers_fired
    stats.Tgd_chase.Chase.new_facts;
  check "divergent chase truncates gracefully under trigger budget" ~expected:"yes"
    ~got:(if truncated && stats.Tgd_chase.Chase.triggers_fired <= 200 then "yes" else "no");
  records := G.report_json ~run:"chase:trigger-budget" gov :: !records;
  (* Deadline truncation: wall-clock, not counter-based. *)
  let gov = G.create ~budget:{ B.unlimited with B.deadline_s = Some 0.05 } () in
  let stats, chase_s = time_once (fun () -> Tgd_chase.Chase.run ~gov divergent (inst ())) in
  let deadline_hit =
    match stats.Tgd_chase.Chase.outcome with
    | Tgd_chase.Chase.Truncated { G.reason = G.Deadline _; _ } -> true
    | _ -> false
  in
  row "  chase under deadline=50ms: stopped after %.1fms (%d rounds)\n" (chase_s *. 1000.)
    stats.Tgd_chase.Chase.rounds;
  check "divergent chase stops on wall-clock deadline within 10x slack" ~expected:"yes"
    ~got:(if deadline_hit && chase_s < 0.5 then "yes" else "no");
  records := G.report_json ~run:"chase:deadline" gov :: !records;
  (* Rewriting truncation: Example 2 is not FO-rewritable; the governed
     rewriter reports its kept/retired split at the stopping point. *)
  let gov = G.create ~budget:{ B.unlimited with B.rewrite_cqs = Some 150 } () in
  let r =
    Tgd_rewrite.Rewrite.ucq ~gov Tgd_core.Paper_examples.example2
      Tgd_core.Paper_examples.example2_query
  in
  let rw_truncated, kept, retired =
    match r.Tgd_rewrite.Rewrite.outcome with
    | Tgd_rewrite.Rewrite.Truncated d ->
      let get k = try List.assoc k d.G.counters with Not_found -> 0 in
      (true, get "rewrite.kept", get "rewrite.retired")
    | Tgd_rewrite.Rewrite.Complete -> (false, 0, 0)
  in
  row "  rewrite of Example 2 under rewrite.cqs=150: truncated with %d kept / %d retired\n" kept
    retired;
  check "divergent rewriting truncates with kept/retired diagnostics" ~expected:"yes"
    ~got:(if rw_truncated && kept > 0 then "yes" else "no");
  records := G.report_json ~run:"rewrite:cq-budget" gov :: !records;
  (* Telemetry trajectory file, sibling of BENCH_rewrite.json. *)
  let oc = open_out "BENCH_telemetry.json" in
  Printf.fprintf oc "{\n  \"schema\": \"bench_telemetry/v1\",\n  \"runs\": [\n    %s\n  ]\n}\n"
    (String.concat ",\n    " (List.rev !records));
  close_out oc;
  row "  wrote BENCH_telemetry.json\n"

(* ------------------------------------------------------------------ *)
(* E16: the serving layer — prepared-query cache under a Zipf replay.   *)

let e16 () =
  section "E16 (serve): prepared-query cache under a Zipf workload replay";
  let module P = Tgd_serve.Protocol in
  let module Server = Tgd_serve.Server in
  let srv = Server.create () in
  let tel = Server.telemetry srv in
  (* Register the university ontology and generated data directly through the
     registry (the JSONL path is exercised by the test suite; the bench
     measures prepare/execute, not parsing). *)
  let data = Tgd_gen.University.generate_data (Tgd_gen.Rng.create 0xE16) ~scale:300 in
  ignore
    (Tgd_serve.Registry.register (Server.registry srv) ~name:"uni" ~facts:data
       Tgd_gen.University.ontology);
  let queries = Array.of_list Tgd_gen.University.queries in
  let n_queries = Array.length queries in
  (* α-rename per tag: the replay must hit the cache through the canonical
     key, never through string identity of the submitted query. *)
  let qstr ~tag q =
    let renaming =
      Subst.of_list
        (Symbol.Set.elements (Cq.vars q)
        |> List.map (fun x -> (x, Term.var (Printf.sprintf "%s_%d" (Symbol.name x) tag))))
    in
    let q' =
      Cq.make ~name:q.Cq.name
        ~answer:(Subst.apply_terms renaming q.Cq.answer)
        ~body:(Subst.apply_atoms renaming q.Cq.body)
    in
    Format.asprintf "%a" Tgd_parser.Printer.query q'
  in
  let execute s =
    match Server.handle srv (P.Execute { ontology = "uni"; query = s; budget = None; target = None }) with
    | Ok _ -> ()
    | Error (kind, msg) -> failwith (kind ^ ": " ^ msg)
  in
  let prepare s =
    match Server.handle srv (P.Prepare { ontology = "uni"; query = s; target = None }) with
    | Ok _ -> ()
    | Error (kind, msg) -> failwith (kind ^ ": " ^ msg)
  in
  (* Cold phase: the first preparation of each distinct query pays the full
     UCQ rewriting + plan compilation; a repeated (α-renamed) preparation is
     a canonical-key cache hit. The speedup of the latter over the former is
     the value of the prepared-query cache — evaluation cost, which both
     paths share, is measured separately by the execute replay below. *)
  let median l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  let cold =
    Array.to_list (Array.map (fun q -> snd (time_once (fun () -> prepare (qstr ~tag:0 q)))) queries)
  in
  let cold_median = median cold in
  let warm_prepare =
    List.concat_map
      (fun tag ->
        Array.to_list
          (Array.map (fun q -> snd (time_once (fun () -> prepare (qstr ~tag q)))) queries))
      [ 1; 2; 3; 4; 5 ]
  in
  let warm_prepare_median = median warm_prepare in
  (* Zipf(s=1) replay over the prepared server. *)
  let weights = Array.init n_queries (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total_w = Array.fold_left ( +. ) 0.0 weights in
  let rng = Tgd_gen.Rng.create 0x5317 in
  let sample () =
    let x = Tgd_gen.Rng.float rng *. total_w in
    let rec go i acc =
      if i = n_queries - 1 then i
      else if acc +. weights.(i) >= x then i
      else go (i + 1) (acc +. weights.(i))
    in
    go 0 0.0
  in
  let n_requests = 400 in
  let lats = Array.make n_requests 0.0 in
  let hits0 = Tgd_exec.Telemetry.get tel "serve.cache.hits" in
  let cqs0 = Tgd_exec.Telemetry.get tel "rewrite.cqs" in
  let replay_s =
    snd
      (time_once (fun () ->
           for k = 0 to n_requests - 1 do
             let s = qstr ~tag:(1 + (k mod 7)) queries.(sample ()) in
             let t = Unix.gettimeofday () in
             execute s;
             lats.(k) <- Unix.gettimeofday () -. t
           done))
  in
  Array.sort compare lats;
  let pct p = lats.(min (n_requests - 1) (int_of_float (p *. float_of_int n_requests))) in
  let p50 = pct 0.5 and p95 = pct 0.95 in
  let throughput = float_of_int n_requests /. replay_s in
  let warm_hits = Tgd_exec.Telemetry.get tel "serve.cache.hits" - hits0 in
  let warm_cqs = Tgd_exec.Telemetry.get tel "rewrite.cqs" - cqs0 in
  let speedup =
    cold_median /. (if warm_prepare_median > 0.0 then warm_prepare_median else epsilon_float)
  in
  row "  cold prepare median: %.2fms   warm prepare median: %.4fms  (%.0fx)\n"
    (cold_median *. 1000.) (warm_prepare_median *. 1000.) speedup;
  row "  warm execute p50: %.3fms  p95: %.3fms\n" (p50 *. 1000.) (p95 *. 1000.);
  row "  replay: %d requests in %.1fms  (%.0f req/s, %d cache hits)\n" n_requests
    (replay_s *. 1000.) throughput warm_hits;
  check "every replay request hits the prepared cache" ~expected:"yes"
    ~got:(if warm_hits = n_requests then "yes" else "no");
  check "warm executes never re-enter the rewriter" ~expected:"yes"
    ~got:(if warm_cqs = 0 then "yes" else "no");
  check "repeated queries >= 5x faster than cold prepare" ~expected:"yes"
    ~got:(if speedup >= 5.0 then "yes" else "no");
  (* Concurrent replay: 4 domains against the shared server state. The
     domains oversubscribe this host's cores by design (the pool clamp in
     Tgd_exec.Pool does not apply to raw Domain.spawn), so the leg runs
     with the minor heap scaled up the way `obda serve` scales it: at the
     256k-word default, stop-the-world minor-GC barriers across 4
     allocating domains collapsed throughput to ~20% of the sequential
     replay. *)
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let per_domain = 100 in
  let failures = Atomic.make 0 in
  let conc_s =
    snd
      (time_once (fun () ->
           let domains =
             Array.init 4 (fun d ->
                 Domain.spawn (fun () ->
                     let rng = Tgd_gen.Rng.create (0xC0 + d) in
                     let sample () =
                       let x = Tgd_gen.Rng.float rng *. total_w in
                       let rec go i acc =
                         if i = n_queries - 1 then i
                         else if acc +. weights.(i) >= x then i
                         else go (i + 1) (acc +. weights.(i))
                       in
                       go 0 0.0
                     in
                     for k = 1 to per_domain do
                       let s = qstr ~tag:(8 + (k mod 5)) queries.(sample ()) in
                       try execute s with _ -> ignore (Atomic.fetch_and_add failures 1)
                     done))
           in
           Array.iter Domain.join domains))
  in
  Gc.set gc0;
  let conc_throughput = float_of_int (4 * per_domain) /. conc_s in
  row "  4-domain replay: %d requests in %.1fms (%.0f req/s, %d failures)\n" (4 * per_domain)
    (conc_s *. 1000.) conc_throughput (Atomic.get failures);
  check "concurrent replay completes without failures" ~expected:"yes"
    ~got:(if Atomic.get failures = 0 then "yes" else "no");
  (* Tripwire for the oversubscription regression: with the GC tuned, four
     raw domains on one core still pay barriers and context switches, but
     must stay well above the collapsed regime (~0.2x). The closed-loop
     network bench (bench/serve_load.exe, BENCH_serve.json v2) gates the
     real serving path at full parity. *)
  let conc_ratio = conc_throughput /. (if throughput > 0.0 then throughput else epsilon_float) in
  row "  4-domain / sequential ratio: %.2f\n" conc_ratio;
  check "4-domain replay >= 0.4x sequential (GC-barrier tripwire)" ~expected:"yes"
    ~got:(if conc_ratio >= 0.4 then "yes" else "no")
  (* BENCH_serve.json (schema v2) is written by bench/serve_load.exe, the
     closed-loop multi-connection load bench over the network front end. *)

(* ------------------------------------------------------------------ *)
(* E17 lives in the conformance harness (obda fuzz / test_conformance);  *)
(* it has no timing dimension, so there is no bench section for it.      *)

(* ------------------------------------------------------------------ *)
(* E18: morsel-driven parallel evaluation — per-core scaling.           *)

type e18_run = {
  engine : string; (* "boxed" | "columnar" *)
  workers : int;
  wall : float; (* seconds *)
  speedup : float; (* vs the boxed 1-worker baseline of the same size *)
  scaling : float; (* vs the same engine's own 1-worker leg *)
  identical : bool;
  gc_minor : float; (* minor words allocated per run *)
  gc_major : float; (* major words allocated per run *)
}

let e18 () =
  section "E18 (parallel eval): columnar vs boxed engines across workers and instance size";
  let v = Term.var in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ Atom.of_strings "r" [ v "X"; v "Y" ]; Atom.of_strings "s" [ v "Y" ] ]
  in
  (* r(x_i, y_{i mod keys}) joined with s over a third of the key domain:
     every answer requires an index probe, the lead relation partitions
     evenly on its first column, and the answer set is ~n/3 tuples — big
     enough that the merge phase is exercised too. *)
  let build n =
    let inst = Tgd_db.Instance.create () in
    let add pred vals =
      ignore
        (Tgd_db.Instance.add_fact inst (Symbol.intern pred)
           (Array.of_list (List.map Tgd_db.Value.const vals)))
    in
    let keys = max 1 (n / 10) in
    for i = 0 to n - 1 do
      add "r" [ Printf.sprintf "x%d" i; Printf.sprintf "y%d" (i mod keys) ]
    done;
    let j = ref 0 in
    while !j < keys do
      add "s" [ Printf.sprintf "y%d" !j ];
      j := !j + 3
    done;
    inst
  in
  let workers_list = [ 1; 2; 4 ] in
  (* The honest hardware number: what the runtime would actually give a
     pool, not what TGDLIB_DOMAINS requests. Legs above it measure
     oversubscription, and the scaling gates only score when it is >= 4. *)
  let host_domains = Domain.recommended_domain_count () in
  row "  host domains: %d (scaling gates score only when >= 4; identity is checked everywhere)\n"
    host_domains;
  row "  %-10s %9s %9s %8s %11s %9s %9s %10s %11s\n" "facts" "answers" "engine" "workers"
    "t_eval" "speedup" "scaling" "identical" "minor_mw";
  let results =
    List.map
      (fun n ->
        let inst = build n in
        let reference = Tgd_db.Eval.ucq inst [ q ] in
        let k = if n >= 1_000_000 then 1 else 3 in
        let timed_leg ~engine ~columnar w =
          Tgd_db.Instance.seal ~partitions:(w * 4) inst;
          let answers = ref [] in
          let minor0 = Gc.minor_words () in
          let major0 = (Gc.quick_stat ()).Gc.major_words in
          let wall =
            time_median ~k (fun () ->
                answers := Tgd_db.Par_eval.ucq ~workers:w ~columnar inst [ q ])
          in
          let gc_minor = (Gc.minor_words () -. minor0) /. float_of_int k in
          let gc_major = ((Gc.quick_stat ()).Gc.major_words -. major0) /. float_of_int k in
          let identical =
            List.length !answers = List.length reference
            && List.for_all2 Tgd_db.Tuple.equal !answers reference
          in
          { engine; workers = w; wall; speedup = 0.; scaling = 0.; identical; gc_minor; gc_major }
        in
        let legs =
          List.concat_map
            (fun w ->
              [ timed_leg ~engine:"boxed" ~columnar:false w;
                timed_leg ~engine:"columnar" ~columnar:true w ])
            workers_list
        in
        let wall_of engine w =
          match List.find_opt (fun r -> r.engine = engine && r.workers = w) legs with
          | Some r -> r.wall
          | None -> nan
        in
        let baseline = wall_of "boxed" 1 in
        let legs =
          List.map
            (fun r ->
              { r with speedup = baseline /. r.wall; scaling = wall_of r.engine 1 /. r.wall })
            legs
        in
        List.iter
          (fun r ->
            row "  %-10d %9d %9s %8d %9.2fms %8.2fx %8.2fx %10s %11.1f\n" n
              (List.length reference) r.engine r.workers (r.wall *. 1000.) r.speedup r.scaling
              (if r.identical then "yes" else "NO")
              (r.gc_minor /. 1e6))
          legs;
        (n, List.length reference, legs))
      [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let all_identical =
    List.for_all (fun (_, _, legs) -> List.for_all (fun r -> r.identical) legs) results
  in
  check "answers byte-identical to sequential at every size/engine/worker count" ~expected:"yes"
    ~got:(if all_identical then "yes" else "no");
  let find_leg n engine w =
    match List.find_opt (fun (n', _, _) -> n' = n) results with
    | None -> None
    | Some (_, _, legs) -> List.find_opt (fun r -> r.engine = engine && r.workers = w) legs
  in
  (* The columnar engine must not regress the sequential path: its 1-worker
     leg vs the boxed 1-worker leg, scored at every size (<= 10% slack). *)
  let seq_ok =
    List.for_all
      (fun (n, _, _) ->
        match (find_leg n "boxed" 1, find_leg n "columnar" 1) with
        | Some b, Some c -> c.wall <= b.wall *. 1.10
        | _ -> false)
      results
  in
  check "columnar 1-worker leg regresses the boxed baseline <= 10%" ~expected:"yes"
    ~got:(if seq_ok then "yes" else "no");
  (* Headline: >= 3x at 4 workers on the 10^6-fact leg, measured against
     the boxed sequential baseline (the engine this PR replaces). Like the
     scaling check below, 4-worker wall clock needs real cores — on a
     smaller host 4 domains time-slice and the ratio is load noise, so the
     number is reported rather than scored. *)
  (match find_leg 1_000_000 "columnar" 4 with
  | Some r when host_domains >= 4 ->
    check ">= 3x speedup at 4 workers on the 10^6-fact leg (vs boxed 1-worker)" ~expected:"yes"
      ~got:(if r.speedup >= 3.0 then "yes" else "no")
  | Some r ->
    row "  (4-worker columnar speedup at 10^6 facts: %.2fx — host has %d domain(s), not scored)\n"
      r.speedup host_domains
  | None -> ());
  (* Real parallel scaling needs real cores: scored on >= 4-domain hosts
     (CI's 4-vCPU leg), reported informationally elsewhere. *)
  (match find_leg 1_000_000 "columnar" 4 with
  | Some r when host_domains >= 4 ->
    check ">= 2x scaling at 4 workers on the 10^6-fact leg" ~expected:"yes"
      ~got:(if r.scaling >= 2.0 then "yes" else "no")
  | Some r ->
    row "  (4-worker columnar scaling at 10^6 facts: %.2fx — host has %d domain(s), not scored)\n"
      r.scaling host_domains
  | None -> ());
  (* min_tuples sweep: the sequential-fallback threshold. Below it a
     disjunct skips task splitting entirely; the sweep shows where
     splitting starts to pay on this host. *)
  let sweep_n = 100_000 in
  let sweep_inst = build sweep_n in
  let sweep_reference = Tgd_db.Eval.ucq sweep_inst [ q ] in
  Tgd_db.Instance.seal ~partitions:16 sweep_inst;
  let sweep_legs =
    List.map
      (fun mt ->
        let answers = ref [] in
        let wall =
          time_median ~k:3 (fun () ->
              answers := Tgd_db.Par_eval.ucq ~workers:4 ~min_tuples:mt sweep_inst [ q ])
        in
        let identical =
          List.length !answers = List.length sweep_reference
          && List.for_all2 Tgd_db.Tuple.equal !answers sweep_reference
        in
        row "  min_tuples sweep: %-9d %9.2fms %10s\n" mt (wall *. 1000.)
          (if identical then "yes" else "NO");
        (mt, wall, identical))
      [ 1; 512; 4_096; 65_536; 1_000_000 ]
  in
  check "min_tuples sweep preserves identity at every threshold" ~expected:"yes"
    ~got:(if List.for_all (fun (_, _, id) -> id) sweep_legs then "yes" else "no");
  let oc = open_out "BENCH_parallel_eval.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"bench_parallel_eval/v2\",\n";
  out "  \"host_domains\": %d,\n" host_domains;
  out "  \"query\": \"q(X) :- r(X,Y), s(Y)\",\n";
  out "  \"baseline\": \"boxed engine, 1 worker (pre-columnar default path)\",\n";
  out "  \"sizes\": [\n";
  List.iteri
    (fun i (n, answers, legs) ->
      out "    {\"facts\": %d, \"answers\": %d, \"runs\": [\n" n answers;
      List.iteri
        (fun j r ->
          out
            "      {\"engine\": %S, \"workers\": %d, \"wall_ms\": %.3f, \"speedup\": %.2f, \
             \"scaling\": %.2f, \"identical\": %b, \"gc_minor_words\": %.0f, \
             \"gc_major_words\": %.0f}%s\n"
            r.engine r.workers (r.wall *. 1000.) r.speedup r.scaling r.identical r.gc_minor
            r.gc_major
            (if j = List.length legs - 1 then "" else ","))
        legs;
      out "    ]}%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  out "  ],\n";
  out "  \"min_tuples_sweep\": {\"facts\": %d, \"workers\": 4, \"engine\": \"columnar\", \
       \"legs\": [" sweep_n;
  List.iteri
    (fun j (mt, wall, identical) ->
      out "%s{\"min_tuples\": %d, \"wall_ms\": %.3f, \"identical\": %b}"
        (if j = 0 then "" else ", ")
        mt (wall *. 1000.) identical)
    sweep_legs;
  out "]}\n}\n";
  close_out oc;
  row "  wrote BENCH_parallel_eval.json\n"

(* ------------------------------------------------------------------ *)
(* E19: incremental maintenance — delta-apply vs cold chase restart.    *)

(* Mirrors what the server's add-facts path does: a live materialization
   is extended by Delta_chase.apply (copy-on-write model copy included in
   the timing), versus throwing the model away and re-chasing the merged
   instance from scratch (also from a copy). The program is a chain of
   three datalog steps plus one existential step, so the delta both joins
   through old facts and invents fresh nulls above the floor. *)
let e19 () =
  section "E19 (incremental chase): delta-apply vs cold restart, ~100k-fact model, 1% batch";
  let tgd name body head = Tgd.make ~name ~body ~head in
  let v = Term.var in
  let program =
    Program.make_exn ~name:"incr"
      [
        tgd "t0" [ Atom.of_strings "r0" [ v "X"; v "Y" ] ] [ Atom.of_strings "r1" [ v "X"; v "Y" ] ];
        tgd "t1" [ Atom.of_strings "r1" [ v "X"; v "Y" ] ] [ Atom.of_strings "r2" [ v "Y"; v "X" ] ];
        tgd "t2" [ Atom.of_strings "r2" [ v "X"; v "Y" ] ] [ Atom.of_strings "visible" [ v "X" ] ];
        (* Z is existential: every visible node gets one invented profile. *)
        tgd "t3" [ Atom.of_strings "visible" [ v "X" ] ] [ Atom.of_strings "profile" [ v "X"; v "Z" ] ];
      ]
  in
  let r0 = Symbol.intern "r0" in
  let n_base = 25_000 in
  let base = Tgd_db.Instance.create () in
  for i = 0 to n_base - 1 do
    ignore
      (Tgd_db.Instance.add_fact base r0
         [|
           Tgd_db.Value.const (Printf.sprintf "c%d" (i mod 20_000));
           Tgd_db.Value.const (Printf.sprintf "c%d" ((i * 7) mod 20_000));
         |])
  done;
  (* The warm materialization the delta leg maintains. *)
  let model = Tgd_db.Instance.copy base in
  let warm_stats = Tgd_chase.Chase.run program model in
  let model_facts = Tgd_db.Instance.cardinality model in
  let floor = Tgd_db.Instance.max_null model in
  row "  base facts: %d   materialized model: %d facts (%d nulls, chase %s)\n" n_base
    model_facts warm_stats.Tgd_chase.Chase.nulls
    (match warm_stats.Tgd_chase.Chase.outcome with
    | Tgd_chase.Chase.Terminated -> "terminated"
    | Tgd_chase.Chase.Truncated _ -> "TRUNCATED");
  (* A 1% batch of fresh edges: new constants, so every insert starts a new
     derivation chain through all four rules. *)
  let n_batch = n_base / 100 in
  let batch =
    List.init n_batch (fun i ->
        ( r0,
          [|
            Tgd_db.Value.const (Printf.sprintf "n%d" i);
            Tgd_db.Value.const (Printf.sprintf "n%d" (i + 1));
          |] ))
  in
  let last_delta = ref None in
  let delta_wall =
    time_median ~k:5 (fun () ->
        let m = Tgd_db.Instance.copy model in
        let stats = Tgd_chase.Delta_chase.apply ~null_floor:floor program m batch in
        last_delta := Some (m, stats))
  in
  let cold_wall =
    time_median ~k:5 (fun () ->
        let m = Tgd_db.Instance.copy base in
        List.iter (fun (pred, t) -> ignore (Tgd_db.Instance.add_fact m pred t)) batch;
        ignore (Tgd_chase.Chase.run program m))
  in
  (* Agreement: the delta-applied model and a cold re-chase must coincide on
     every null-free fact (certain-answer equivalence). *)
  let cold = Tgd_db.Instance.copy base in
  List.iter (fun (pred, t) -> ignore (Tgd_db.Instance.add_fact cold pred t)) batch;
  ignore (Tgd_chase.Chase.run program cold);
  let delta_model, delta_stats =
    match !last_delta with Some (m, s) -> (m, s) | None -> assert false
  in
  let null_free inst =
    Tgd_db.Instance.facts inst
    |> List.filter (fun (_, t) -> not (Tgd_db.Tuple.has_null t))
    |> List.sort compare
  in
  let agree = null_free delta_model = null_free cold in
  let speedup = cold_wall /. delta_wall in
  row "  cold restart: %.1f ms   delta-apply: %.1f ms   speedup: %.1fx\n" (cold_wall *. 1000.)
    (delta_wall *. 1000.) speedup;
  row "  delta stats: %d inserted, %d derived, %d nulls, %d triggers, %d rounds\n"
    delta_stats.Tgd_chase.Delta_chase.inserted delta_stats.Tgd_chase.Delta_chase.derived
    delta_stats.Tgd_chase.Delta_chase.nulls delta_stats.Tgd_chase.Delta_chase.triggers_fired
    delta_stats.Tgd_chase.Delta_chase.rounds;
  check "delta-apply agrees with cold restart on null-free facts" ~expected:"yes"
    ~got:(if agree then "yes" else "no");
  check "delta-apply at least 5x faster than cold restart" ~expected:"yes"
    ~got:(if speedup >= 5.0 then "yes" else "no");
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench_incremental/v1\",\n\
    \  \"base_facts\": %d,\n\
    \  \"model_facts\": %d,\n\
    \  \"batch_facts\": %d,\n\
    \  \"cold_ms\": %.3f,\n\
    \  \"delta_ms\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"agree_null_free\": %b,\n\
    \  \"delta\": {\"inserted\": %d, \"derived\": %d, \"nulls\": %d, \"triggers\": %d, \
     \"rounds\": %d}\n\
     }\n"
    n_base model_facts n_batch (cold_wall *. 1000.) (delta_wall *. 1000.) speedup agree
    delta_stats.Tgd_chase.Delta_chase.inserted delta_stats.Tgd_chase.Delta_chase.derived
    delta_stats.Tgd_chase.Delta_chase.nulls delta_stats.Tgd_chase.Delta_chase.triggers_fired
    delta_stats.Tgd_chase.Delta_chase.rounds;
  close_out oc;
  row "  wrote BENCH_incremental.json\n"

(* ------------------------------------------------------------------ *)
(* E20: durable store — cold recovery vs from-scratch re-chase, and the
   WAL append overhead on the add-facts hot path.                       *)

(* Recovery loads the snapshot near-verbatim (bulk column reads + one
   symbol remap pass) where a cold start must re-run the chase over the
   whole base instance; the gap is the point of persisting the
   materialization. The program is E19's chain (three datalog steps + one
   existential step), so models are ~4x their base and carry nulls. *)
let e20 ~quick () =
  section "E20 (durable store): snapshot recovery vs re-chase, WAL overhead on add-facts";
  (* Recovery wall-clock is dominated by bulk array allocation, which pays
     major-GC slices proportional to whatever live heap the earlier
     experiments left behind. Compact first so the legs measure the store,
     not E1-E19 residue. *)
  Gc.compact ();
  let tgd name body head = Tgd.make ~name ~body ~head in
  let v = Term.var in
  let program =
    Program.make_exn ~name:"persist"
      [
        tgd "t0" [ Atom.of_strings "r0" [ v "X"; v "Y" ] ] [ Atom.of_strings "r1" [ v "X"; v "Y" ] ];
        tgd "t1" [ Atom.of_strings "r1" [ v "X"; v "Y" ] ] [ Atom.of_strings "r2" [ v "Y"; v "X" ] ];
        tgd "t2" [ Atom.of_strings "r2" [ v "X"; v "Y" ] ] [ Atom.of_strings "visible" [ v "X" ] ];
        tgd "t3" [ Atom.of_strings "visible" [ v "X" ] ] [ Atom.of_strings "profile" [ v "X"; v "Z" ] ];
      ]
  in
  let r0 = Symbol.intern "r0" in
  let rm_rf dir =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  let null_free inst =
    Tgd_db.Instance.facts inst
    |> List.filter (fun (_, t) -> not (Tgd_db.Tuple.has_null t))
    |> List.sort compare
  in
  let make_base n =
    let base = Tgd_db.Instance.create () in
    for i = 0 to n - 1 do
      ignore
        (Tgd_db.Instance.add_fact base r0
           [|
             Tgd_db.Value.const (Printf.sprintf "c%d" (i mod (4 * n / 5)));
             Tgd_db.Value.const (Printf.sprintf "c%d" ((i * 7) mod (4 * n / 5)));
           |])
    done;
    base
  in
  let sizes = if quick then [ 2_500; 25_000 ] else [ 2_500; 25_000; 250_000 ] in
  let legs =
    List.map
      (fun n ->
        let base = make_base n in
        let model = Tgd_db.Instance.copy base in
        ignore (Tgd_chase.Chase.run program model);
        let model_facts = Tgd_db.Instance.cardinality model in
        let floor = Tgd_db.Instance.max_null model in
        Tgd_db.Instance.seal base;
        Tgd_db.Instance.seal model;
        let dir = Filename.temp_dir "tgd_bench_store" "" in
        let store = Result.get_ok (Tgd_store.Store.open_dir ~fsync:false dir) in
        ignore
          (Tgd_store.Store.checkpoint store ~name:"bench"
             {
               Tgd_store.Snapshot.epoch = 1;
               delta_epoch = 1;
               program_src = Tgd_parser.Printer.program_to_string program;
               instance = base;
               materialization = Some { Tgd_store.Snapshot.model; floor; complete = true };
             });
        Tgd_store.Store.close store;
        let snap_bytes =
          Array.fold_left
            (fun acc f ->
              if Filename.check_suffix f ".snap" then
                acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
              else acc)
            0 (Sys.readdir dir)
        in
        let k = if n >= 250_000 then 3 else 5 in
        (* Cold recovery: open the store and build a server from it — the
           exact `obda serve --data-dir` startup path. *)
        (* Collect between samples (outside the timed region): each cold
           recovery decodes multi-megabyte arrays whose garbage would
           otherwise pile up and bill later samples for earlier ones. *)
        let time_median_gc ~k f =
          let samples =
            List.init k (fun _ ->
                Gc.full_major ();
                let t0 = Unix.gettimeofday () in
                f ();
                Unix.gettimeofday () -. t0)
          in
          List.nth (List.sort compare samples) (k / 2)
        in
        let recovery_wall =
          time_median_gc ~k (fun () ->
              let store = Result.get_ok (Tgd_store.Store.open_dir ~fsync:false dir) in
              let server = Tgd_serve.Server.create ~store () in
              Tgd_serve.Server.shutdown server)
        in
        (* From-scratch alternative: no store, so the materialization must
           be re-chased from the base facts. *)
        let rechase_wall =
          time_median_gc ~k (fun () ->
              let m = Tgd_db.Instance.copy base in
              ignore (Tgd_chase.Chase.run program m))
        in
        (* Agreement: the recovered materialization is null-free-identical
           to the one that was persisted. *)
        let store = Result.get_ok (Tgd_store.Store.open_dir ~fsync:false dir) in
        let server = Tgd_serve.Server.create ~store () in
        let agree, recovered_facts =
          match Tgd_serve.Registry.find (Tgd_serve.Server.registry server) "bench" with
          | Some entry -> (
            match entry.Tgd_serve.Registry.materialization with
            | Some m ->
              ( null_free m.Tgd_serve.Registry.model = null_free model
                && Tgd_db.Instance.cardinality entry.Tgd_serve.Registry.instance
                   = Tgd_db.Instance.cardinality base,
                Tgd_db.Instance.cardinality m.Tgd_serve.Registry.model )
            | None -> (false, 0))
          | None -> (false, 0)
        in
        Tgd_serve.Server.shutdown server;
        rm_rf dir;
        let speedup = rechase_wall /. recovery_wall in
        row "  base %7d  model %8d  snap %9d B  recover %8.1f ms  re-chase %8.1f ms  %5.1fx\n"
          n model_facts snap_bytes (recovery_wall *. 1000.) (rechase_wall *. 1000.) speedup;
        check (Printf.sprintf "recovered model identical (null-free) at %d facts" model_facts)
          ~expected:"yes"
          ~got:(if agree && recovered_facts = model_facts then "yes" else "no");
        (n, model_facts, snap_bytes, recovery_wall, rechase_wall, speedup, agree))
      sizes
  in
  (* The acceptance gate rides on the ~100k-fact model leg (25k base). *)
  (match List.find_opt (fun (n, _, _, _, _, _, _) -> n = 25_000) legs with
  | Some (_, _, _, _, _, speedup, _) ->
    check "recovery at ~100k facts at least 3x faster than re-chase" ~expected:"yes"
      ~got:(if speedup >= 3.0 then "yes" else "no")
  | None -> ());
  (* WAL overhead on the add-facts hot path: identical mutation streams
     against an in-memory server, a durable one without fsync, and a
     durable one with fsync-per-ack. *)
  let n_ops = 100 and per_op = 50 in
  let csvs =
    Array.init n_ops (fun op ->
        String.concat "\n"
          (List.init per_op (fun i -> Printf.sprintf "r0,w%d_%d,w%d_%d" op i op (i + 1))))
  in
  let source = "r0(X,Y) -> r1(X,Y)." in
  let run_ops server =
    (match
       Tgd_serve.Server.handle server
         (Tgd_serve.Protocol.Register_ontology
            { name = "wal"; source = Tgd_serve.Protocol.Inline source })
     with
    | Ok _ -> ()
    | Error (_, msg) -> failwith msg);
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun csv ->
        match
          Tgd_serve.Server.handle server
            (Tgd_serve.Protocol.Add_facts { name = "wal"; source = Tgd_serve.Protocol.Inline csv })
        with
        | Ok _ -> ()
        | Error (_, msg) -> failwith msg)
      csvs;
    (Unix.gettimeofday () -. t0) /. float_of_int n_ops
  in
  let with_server ~fsync ~durable f =
    if not durable then begin
      let server = Tgd_serve.Server.create () in
      Fun.protect ~finally:(fun () -> Tgd_serve.Server.shutdown server) (fun () -> f server)
    end
    else begin
      let dir = Filename.temp_dir "tgd_bench_wal" "" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let store = Result.get_ok (Tgd_store.Store.open_dir ~fsync dir) in
          let server = Tgd_serve.Server.create ~store () in
          Fun.protect ~finally:(fun () -> Tgd_serve.Server.shutdown server) (fun () -> f server))
    end
  in
  let none_s = with_server ~fsync:false ~durable:false run_ops in
  let wal_s = with_server ~fsync:false ~durable:true run_ops in
  let fsync_s = with_server ~fsync:true ~durable:true run_ops in
  row "  add-facts op (%d facts): none %.1f us   wal %.1f us   wal+fsync %.1f us\n" per_op
    (none_s *. 1e6) (wal_s *. 1e6) (fsync_s *. 1e6);
  let oc = open_out "BENCH_persistence.json" in
  Printf.fprintf oc "{\n  \"schema\": \"bench_persistence/v1\",\n  \"legs\": [\n";
  List.iteri
    (fun i (n, model_facts, snap_bytes, recovery, rechase, speedup, agree) ->
      Printf.fprintf oc
        "    {\"base_facts\": %d, \"model_facts\": %d, \"snapshot_bytes\": %d, \"recovery_ms\": \
         %.3f, \"rechase_ms\": %.3f, \"speedup\": %.2f, \"agree_null_free\": %b}%s\n"
        n model_facts snap_bytes (recovery *. 1000.) (rechase *. 1000.) speedup agree
        (if i = List.length legs - 1 then "" else ","))
    legs;
  Printf.fprintf oc
    "  ],\n\
    \  \"add_facts_overhead_us\": {\"facts_per_op\": %d, \"in_memory\": %.2f, \"wal\": %.2f, \
     \"wal_fsync\": %.2f}\n\
     }\n"
    per_op (none_s *. 1e6) (wal_s *. 1e6) (fsync_s *. 1e6);
  close_out oc;
  row "  wrote BENCH_persistence.json\n"

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                    *)

open Bechamel
open Toolkit

let bechamel_groups () =
  let stage f = Staged.stage f in
  let q_atomic p pred =
    let arity = Option.get (Program.arity_of p (Symbol.intern pred)) in
    let vars = List.init arity (fun i -> Term.var (Printf.sprintf "X%d" i)) in
    Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make (Symbol.intern pred) vars ]
  in
  let chain40 = Tgd_gen.Gen_tgd.chain ?name:None ~depth:40 in
  let star40 = Tgd_gen.Gen_tgd.wide_star ?name:None ~width:40 in
  let dlite40 =
    let rng = Tgd_gen.Rng.create 555 in
    Tgd_gen.Dl_lite.to_program (Tgd_gen.Dl_lite.random_tbox rng ~n_concepts:20 ~n_roles:10 ~n_axioms:40)
  in
  let uni = Tgd_gen.University.ontology in
  let rng = Tgd_gen.Rng.create 556 in
  let uni_data = Tgd_gen.University.generate_data rng ~scale:200 in
  let q1 = List.hd Tgd_gen.University.queries in
  let q1_rw = (Tgd_rewrite.Rewrite.ucq uni q1).Tgd_rewrite.Rewrite.ucq in
  let parse_src = Tgd_parser.Printer.program_to_string uni in
  let ex1_q =
    Cq.make ~name:"q" ~answer:[ Term.var "X" ]
      ~body:[ Atom.of_strings "r" [ Term.var "X"; Term.var "Y" ] ]
  in
  [
    Test.make_grouped ~name:"E6-swr-check"
      [
        Test.make ~name:"chain-40" (stage (fun () -> Tgd_core.Swr.check chain40));
        Test.make ~name:"star-40" (stage (fun () -> Tgd_core.Swr.check star40));
        Test.make ~name:"dl-lite-40" (stage (fun () -> Tgd_core.Swr.check dlite40));
      ];
    Test.make_grouped ~name:"E7-wr-check"
      [
        Test.make ~name:"example2" (stage (fun () -> Tgd_core.Wr.check Tgd_core.Paper_examples.example2));
        Test.make ~name:"example3" (stage (fun () -> Tgd_core.Wr.check Tgd_core.Paper_examples.example3));
        Test.make ~name:"chain-40" (stage (fun () -> Tgd_core.Wr.check chain40));
      ];
    Test.make_grouped ~name:"E8-rewrite"
      [
        Test.make ~name:"example1-atomic" (stage (fun () -> Tgd_rewrite.Rewrite.ucq Tgd_core.Paper_examples.example1 ex1_q));
        Test.make ~name:"university-q1" (stage (fun () -> Tgd_rewrite.Rewrite.ucq uni q1));
        Test.make ~name:"dl-lite-40-atomic" (stage (fun () -> Tgd_rewrite.Rewrite.ucq dlite40 (q_atomic dlite40 "a0")));
      ];
    Test.make_grouped ~name:"E8-answering"
      [
        Test.make ~name:"eval-ucq-q1" (stage (fun () -> Tgd_db.Eval.ucq uni_data q1_rw));
        Test.make ~name:"chase-uni-200"
          (stage (fun () ->
               let copy = Tgd_db.Instance.copy uni_data in
               Tgd_chase.Chase.run uni copy));
      ];
    (let deep = deep_hierarchy ~depth:120 in
     let qd =
       Cq.make ~name:"q" ~answer:[ Term.var "X" ]
         ~body:[ Atom.of_strings "a120" [ Term.var "X" ] ]
     in
     let deep_ucq = (Tgd_rewrite.Rewrite.ucq deep qd).Tgd_rewrite.Rewrite.ucq in
     let d1 = List.hd deep_ucq and d2 = List.hd (List.rev deep_ucq) in
     let p1 = Containment.precompute d1 and p2 = Containment.precompute d2 in
     Test.make_grouped ~name:"E14-containment"
       [
         Test.make ~name:"contained-filtered" (stage (fun () -> Containment.contained d1 d2));
         Test.make ~name:"contained-pre" (stage (fun () -> Containment.contained_pre p1 p2));
         Test.make ~name:"contained-reference"
           (stage (fun () -> Containment.contained_reference d1 d2));
         Test.make ~name:"minimize-deep-120"
           (stage (fun () -> Containment.minimize_ucq deep_ucq));
         Test.make ~name:"minimize-deep-120-reference"
           (stage (fun () -> Containment.minimize_ucq_reference deep_ucq));
       ]);
    Test.make_grouped ~name:"substrate"
      [
        Test.make ~name:"parse-university" (stage (fun () -> Tgd_parser.Parser.parse_string parse_src));
        Test.make ~name:"classify-university" (stage (fun () -> Tgd_core.Classifier.classify uni));
      ];
  ]

let run_bechamel () =
  section "Bechamel micro-benchmarks (ns/run, OLS estimate)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:false () in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ instance ] group in
      let results = Analyze.all ols instance raw in
      let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
      List.iter
        (fun (name, r) ->
          match Analyze.OLS.estimates r with
          | Some [ est ] ->
            if est > 1_000_000.0 then row "  %-44s %12.3f ms/run\n" name (est /. 1_000_000.0)
            else if est > 1_000.0 then row "  %-44s %12.3f us/run\n" name (est /. 1_000.0)
            else row "  %-44s %12.1f ns/run\n" name est
          | Some _ | None -> row "  %-44s (no estimate)\n" name)
        (List.sort compare rows))
    (bechamel_groups ())

(* ------------------------------------------------------------------ *)
(* E21: the Datalog rewriting target vs the UCQ target. Shared          *)
(* intensional patterns keep the program polynomial where the UCQ union *)
(* blows up, and Example 2 — which is NOT FO-rewritable, so no UCQ      *)
(* budget ever completes it — gets exact PTIME answers from its         *)
(* (recursive) Datalog program.                                         *)

type datalog_sample = {
  dl_name : string;
  dl_ms : float;
  dl_stats : Tgd_rewrite.Datalog_rw.stats;
  dl_nonrecursive : bool;
  dl_outcome : string;
}

let e21 (rw_samples, (min_disjuncts, min_engine_ms, min_reference_ms, min_speedup)) =
  section "E21 (rewrite): Datalog target — shared patterns vs UCQ unions";
  let module D = Tgd_rewrite.Datalog_rw in
  let v = Term.var in
  let atomic p pred =
    let arity = Option.get (Program.arity_of p (Symbol.intern pred)) in
    let vars = List.init arity (fun i -> v (Printf.sprintf "X%d" i)) in
    Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make (Symbol.intern pred) vars ]
  in
  let dlite40 =
    let rng = Tgd_gen.Rng.create 555 in
    Tgd_gen.Dl_lite.to_program
      (Tgd_gen.Dl_lite.random_tbox rng ~n_concepts:20 ~n_roles:10 ~n_axioms:40)
  in
  let deep300 = deep_hierarchy ~depth:300 in
  let chain120 = Tgd_gen.Gen_tgd.chain ?name:None ~depth:120 in
  let q_deep = atomic deep300 "a300" in
  let workloads =
    [
      ("e2-budget-400", Tgd_core.Paper_examples.example2, Tgd_core.Paper_examples.example2_query);
      ("dl-lite-40-atomic", dlite40, atomic dlite40 "a0");
      ("deep-hierarchy-300", deep300, q_deep);
      ( "deep-role-chain-120",
        chain120,
        Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ Atom.of_strings "r120" [ v "X"; v "Y" ] ] );
    ]
  in
  let results =
    List.map
      (fun (name, p, q) ->
        let r = ref (D.rewrite p q) in
        let ms = time_median ~k:3 (fun () -> r := D.rewrite p q) *. 1000. in
        let r = !r in
        let sample =
          {
            dl_name = name;
            dl_ms = ms;
            dl_stats = r.D.stats;
            dl_nonrecursive = r.D.nonrecursive;
            dl_outcome =
              (match r.D.outcome with
              | D.Complete -> "complete"
              | D.Truncated d -> "truncated: " ^ Tgd_exec.Governor.diag_summary d);
          }
        in
        (sample, r))
      workloads
  in
  let samples = List.map fst results in
  let ucq_outcome name =
    match List.find_opt (fun s -> s.rw_name = name) rw_samples with
    | Some s -> s.rw_outcome
    | None -> "-"
  in
  row "  %-22s %10s %9s %7s %10s %-10s %-20s\n" "workload" "t_rewrite" "patterns" "rules"
    "recursive" "datalog" "ucq-outcome";
  List.iter
    (fun s ->
      row "  %-22s %8.2fms %9d %7d %10s %-10s %-20s\n" s.dl_name s.dl_ms s.dl_stats.D.patterns
        s.dl_stats.D.rules
        (if s.dl_nonrecursive then "no" else "yes")
        s.dl_outcome (ucq_outcome s.dl_name))
    samples;
  let outcome_of name = (List.find (fun s -> s.dl_name = name) samples).dl_outcome in
  let truncated s = String.length s >= 9 && String.sub s 0 9 = "truncated" in
  check "deep-hierarchy-300: Datalog backend complete" ~expected:"yes"
    ~got:(if outcome_of "deep-hierarchy-300" = "complete" then "yes" else "no");
  check "e2-budget-400: Datalog complete where the UCQ target truncates" ~expected:"yes"
    ~got:
      (if outcome_of "e2-budget-400" = "complete" && truncated (ucq_outcome "e2-budget-400") then
         "yes"
       else "no");
  (* Linear pattern growth on the hierarchy: one shared pattern per level
     (plus the goal) where the UCQ backend enumerates one disjunct each. *)
  let deep_dl = List.assoc "deep-hierarchy-300" (List.map (fun (s, r) -> (s.dl_name, r)) results) in
  check "deep-hierarchy-300: <= depth+2 shared patterns" ~expected:"yes"
    ~got:(if deep_dl.D.stats.D.patterns <= 302 then "yes" else "no");
  (* Differential: both backends must give the same certain answers. *)
  let null_free = List.filter (fun t -> not (Tgd_db.Tuple.has_null t)) in
  let tuples_equal l1 l2 =
    List.length l1 = List.length l2 && List.for_all2 Tgd_db.Tuple.equal l1 l2
  in
  let tuples_subset small big =
    List.for_all (fun t -> List.exists (Tgd_db.Tuple.equal t) big) small
  in
  let inst_deep =
    Tgd_db.Instance.of_atoms
      [
        Atom.of_strings "a0" [ Term.const "c0" ];
        Atom.of_strings "a150" [ Term.const "c150" ];
      ]
  in
  let deep_ucq = Tgd_rewrite.Rewrite.ucq deep300 q_deep in
  let via_ucq = null_free (Tgd_db.Eval.ucq inst_deep deep_ucq.Tgd_rewrite.Rewrite.ucq) in
  let via_datalog = Tgd_obda.Target.datalog_answers deep_dl inst_deep in
  check "deep-hierarchy-300: UCQ and Datalog answers agree" ~expected:"yes"
    ~got:(if tuples_equal via_ucq via_datalog && List.length via_ucq = 2 then "yes" else "no");
  (* Example 2, facts {t(c,a), r(c,d)}: the chase derives s(c,c,a) then
     r(a,_), so the boolean query r(a,X) is certain. The 400-CQ UCQ prefix
     is sound but need not find it; the Datalog target answers exactly. *)
  let inst_e2 =
    Tgd_db.Instance.of_atoms
      [
        Atom.of_strings "t" [ Term.const "c"; Term.const "a" ];
        Atom.of_strings "r" [ Term.const "c"; Term.const "d" ];
      ]
  in
  let e2_dl = List.assoc "e2-budget-400" (List.map (fun (s, r) -> (s.dl_name, r)) results) in
  let e2_datalog_answers = Tgd_obda.Target.datalog_answers e2_dl inst_e2 in
  let e2_ucq =
    Tgd_rewrite.Rewrite.ucq
      ~config:{ Tgd_rewrite.Rewrite.default_config with Tgd_rewrite.Rewrite.max_cqs = 400 }
      Tgd_core.Paper_examples.example2 Tgd_core.Paper_examples.example2_query
  in
  let e2_ucq_answers =
    null_free (Tgd_db.Eval.ucq inst_e2 e2_ucq.Tgd_rewrite.Rewrite.ucq)
  in
  check "e2: boolean entailment found exactly by the Datalog target" ~expected:"yes"
    ~got:(if e2_datalog_answers <> [] then "yes" else "no");
  check "e2: truncated UCQ answers under-approximate the Datalog target" ~expected:"yes"
    ~got:(if tuples_subset e2_ucq_answers e2_datalog_answers then "yes" else "no");
  (* Combined trajectory file for regression tracking across PRs. *)
  let oc = open_out "BENCH_rewrite.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"bench_rewrite/v2\",\n";
  out "  \"domains\": %d,\n" (Parallel.domain_count ());
  out "  \"workloads\": [\n";
  List.iteri
    (fun i s ->
      let st = s.rw_stats in
      out
        "    {\"name\": %S, \"wall_ms\": %.3f, \"outcome\": %S, \"generated\": %d, \"explored\": \
         %d, \"kept\": %d, \"max_depth\": %d, \"cqs_per_sec\": %.1f, \"containment_checks\": %d, \
         \"containment_pruned\": %d, \"hom_searches\": %d}%s\n"
        s.rw_name s.rw_ms s.rw_outcome st.Tgd_rewrite.Rewrite.generated
        st.Tgd_rewrite.Rewrite.explored st.Tgd_rewrite.Rewrite.kept
        st.Tgd_rewrite.Rewrite.max_depth
        (float_of_int st.Tgd_rewrite.Rewrite.generated /. (s.rw_ms /. 1000.))
        st.Tgd_rewrite.Rewrite.containment_checks st.Tgd_rewrite.Rewrite.containment_pruned
        st.Tgd_rewrite.Rewrite.hom_searches
        (if i = List.length rw_samples - 1 then "" else ","))
    rw_samples;
  out "  ],\n";
  out "  \"datalog_workloads\": [\n";
  List.iteri
    (fun i s ->
      out
        "    {\"name\": %S, \"wall_ms\": %.3f, \"outcome\": %S, \"patterns\": %d, \"rules\": %d, \
         \"base_rules\": %d, \"explored\": %d, \"nonrecursive\": %b}%s\n"
        s.dl_name s.dl_ms s.dl_outcome s.dl_stats.D.patterns s.dl_stats.D.rules
        s.dl_stats.D.base_rules s.dl_stats.D.explored s.dl_nonrecursive
        (if i = List.length samples - 1 then "" else ","))
    samples;
  out "  ],\n";
  out
    "  \"minimize_deep_hierarchy\": {\"disjuncts\": %d, \"engine_ms\": %.3f, \"reference_ms\": \
     %.3f, \"speedup\": %.2f}\n"
    min_disjuncts min_engine_ms min_reference_ms min_speedup;
  out "}\n";
  close_out oc;
  row "  wrote BENCH_rewrite.json\n"

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  let rw = e14 () in
  e15 ();
  e16 ();
  e18 ();
  e19 ();
  e20 ~quick ();
  e21 rw;
  if not quick then run_bechamel ();
  Printf.printf "\nAll experiments done.\n"
