#!/usr/bin/env bash
# Docs-drift check: fail when MANUAL.md and the obda CLI disagree about
# which flags exist.
#
# For every subcommand listed by `obda --help`, the flag inventory of
# `obda CMD --help=plain` (OPTIONS section; the cmdliner COMMON OPTIONS
# --help/--version are excluded) is compared against the flags mentioned
# in MANUAL.md's "### `obda CMD`" section, plus the two shared sections
# ("Resource budgets and telemetry" and "Parallel evaluation") that
# document flags common to several subcommands:
#
#   - UNDOCUMENTED: the command accepts a flag none of whose aliases is
#     mentioned in the relevant MANUAL.md sections;
#   - PHANTOM: the command's MANUAL.md section mentions a flag the
#     command does not accept;
#   - MISSING SECTION: a subcommand exists with no "### `obda CMD`"
#     heading at all.
#
# Usage: scripts/docs_drift.sh  (from the repo root)
#   OBDA=/path/to/obda.exe MANUAL=path/to/MANUAL.md to override.
set -u

OBDA=${OBDA:-_build/default/bin/obda.exe}
MANUAL=${MANUAL:-MANUAL.md}

if [ ! -x "$OBDA" ]; then
  echo "docs-drift: obda binary not found at $OBDA (set OBDA=...)" >&2
  exit 2
fi
if [ ! -f "$MANUAL" ]; then
  echo "docs-drift: manual not found at $MANUAL (set MANUAL=...)" >&2
  exit 2
fi

fail=0

# stdin -> one flag token per line (--long or -s), deduplicated.
flags_in() {
  awk '{
    n = split($0, t, /[^A-Za-z0-9-]+/)
    for (i = 1; i <= n; i++)
      if (t[i] ~ /^--[A-Za-z][A-Za-z0-9-]*$/ || t[i] ~ /^-[A-Za-z]$/)
        print t[i]
  }' | sort -u
}

# $1 = cmd -> the body of MANUAL.md's "### `obda CMD`" section.
manual_section() {
  awk -v head="### \`obda $1\`" '
    $0 == head    { insec = 1; next }
    insec && /^##/ { insec = 0 }
    insec          { print }' "$MANUAL"
}

# The shared-flag sections of MANUAL.md (budget/telemetry + parallel eval).
shared_sections() {
  awk '
    /^## Resource budgets and telemetry/ { insec = 1 }
    /^## Parallel evaluation/            { insec = 1 }
    /^## / && !/budgets and telemetry|Parallel evaluation/ { insec = 0 }
    insec { print }' "$MANUAL"
}

# $1 = cmd -> one line per accepted option, all its aliases space-separated.
help_options() {
  "$OBDA" "$1" --help=plain 2>/dev/null | awk '
    /^OPTIONS$/ { inopt = 1; next }
    /^[A-Z]/    { if (!/^OPTIONS$/) inopt = 0 }
    inopt && /^       -/ {
      n = split($0, t, /[^A-Za-z0-9-]+/); line = ""
      for (i = 1; i <= n; i++)
        if (t[i] ~ /^--[A-Za-z][A-Za-z0-9-]*$/ || t[i] ~ /^-[A-Za-z]$/)
          line = line " " t[i]
      if (line != "") print substr(line, 2)
    }'
}

# Subcommand inventory straight from the CLI, so a new subcommand without
# a manual section is itself a drift failure.
CMDS=$("$OBDA" --help=plain 2>/dev/null | awk '
  /^COMMANDS$/ { incmd = 1; next }
  /^[A-Z]/     { if (!/^COMMANDS$/) incmd = 0 }
  incmd && /^       [a-z]/ { print $1 }' | sort -u)

if [ -z "$CMDS" ]; then
  echo "docs-drift: could not extract subcommand list from '$OBDA --help'" >&2
  exit 2
fi

SHARED=$(shared_sections | flags_in)

for cmd in $CMDS; do
  if ! grep -q "^### \`obda $cmd\`\$" "$MANUAL"; then
    echo "docs-drift: MISSING SECTION: no '### \`obda $cmd\`' heading in $MANUAL" >&2
    fail=1
    continue
  fi

  sec_flags=$(manual_section "$cmd" | flags_in)
  doc_flags=$(printf '%s\n%s\n' "$sec_flags" "$SHARED" | sort -u)

  # Undocumented: every accepted option needs at least one alias mentioned.
  while IFS= read -r aliases; do
    [ -n "$aliases" ] || continue
    found=0
    for a in $aliases; do
      if printf '%s\n' "$doc_flags" | grep -qxF -- "$a"; then
        found=1
        break
      fi
    done
    if [ "$found" -eq 0 ]; then
      echo "docs-drift: UNDOCUMENTED: obda $cmd accepts [$aliases] but $MANUAL does not mention it" >&2
      fail=1
    fi
  done <<EOF
$(help_options "$cmd")
EOF

  # Phantom: every flag the manual section mentions must be accepted.
  accepted=$(help_options "$cmd" | tr ' ' '\n' | sort -u)
  while IFS= read -r f; do
    [ -n "$f" ] || continue
    if ! printf '%s\n' "$accepted" | grep -qxF -- "$f"; then
      echo "docs-drift: PHANTOM: $MANUAL documents $f under 'obda $cmd' but the command does not accept it" >&2
      fail=1
    fi
  done <<EOF
$sec_flags
EOF
done

if [ "$fail" -ne 0 ]; then
  echo "docs-drift: FAILED — update MANUAL.md (or the cmdliner terms) until both agree" >&2
  exit 1
fi
echo "docs-drift: OK — MANUAL.md flag inventory matches every subcommand's --help"
