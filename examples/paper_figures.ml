(* Reproduce the paper's figures and worked examples (experiments E1-E4):

   - Figure 1: the position graph of Example 1, and its SWR verdict;
   - Figure 2: the position graph of Example 2 — no dangerous cycle, the
     documented failure of the position graph on non-simple TGDs;
   - Figure 3: the P-node graph of Example 2 — the dangerous cycle is found;
   - Example 3: FO-rewritable but in no prior class; WR accepts it.

   Run with: dune exec examples/paper_figures.exe *)

open Tgd_core

let rule_line label value = Format.printf "  %-46s %s@." label value

let show_position_graph title program =
  let g = Position_graph.build program in
  Format.printf "%s@." title;
  Format.printf "  nodes (%d):" (Position_graph.G.n_nodes g);
  List.iter (fun n -> Format.printf " %s" (Position.to_string n)) (Position_graph.G.nodes g);
  Format.printf "@.  edges (%d):@." (Position_graph.G.n_edges g);
  List.iter
    (fun (src, dst, label) ->
      Format.printf "    %s -> %s%s@." src dst (if label = "" then "" else " [" ^ label ^ "]"))
    (Position_graph.edge_list g);
  g

let () =
  (* ---- Figure 1 / Example 1 ---------------------------------------- *)
  Format.printf "=== Example 1 (Figure 1) ===@.";
  let g1 = show_position_graph "position graph AG(P):" Paper_examples.example1 in
  let v1 = Swr.check Paper_examples.example1 in
  rule_line "simple TGDs" (string_of_bool v1.Swr.simple);
  rule_line "dangerous cycle (m-edge and s-edge)" (string_of_bool v1.Swr.dangerous);
  rule_line "SWR  (paper: yes)" (string_of_bool v1.Swr.swr);
  rule_line "matches paper's Figure 1 edge list"
    (string_of_bool (Position_graph.edge_list g1 = Paper_examples.figure1_edges));

  (* ---- Figure 2 / Example 2, position graph ------------------------ *)
  Format.printf "@.=== Example 2 (Figure 2): the position graph misses the danger ===@.";
  let g2 = show_position_graph "position graph AG(P):" Paper_examples.example2 in
  rule_line "dangerous cycle found by position graph" (string_of_bool (Swr.dangerous_cycle_in_graph g2));
  rule_line "... yet the set is NOT FO-rewritable" "(paper, Example 2)";

  (* The divergence is witnessed by the rewriting of q() :- r(a, X). *)
  let config = { Tgd_rewrite.Rewrite.default_config with max_cqs = 300 } in
  let r = Tgd_rewrite.Rewrite.ucq ~config Paper_examples.example2 Paper_examples.example2_query in
  rule_line "rewriting of q() :- r(a,X) terminates"
    (match r.Tgd_rewrite.Rewrite.outcome with
    | Tgd_rewrite.Rewrite.Complete -> "yes (unexpected!)"
    | Tgd_rewrite.Rewrite.Truncated d ->
      Printf.sprintf "no — unbounded chain (%s, reached depth %d)"
        (Tgd_exec.Governor.diag_summary d)
        r.Tgd_rewrite.Rewrite.stats.Tgd_rewrite.Rewrite.max_depth);

  (* ---- Figure 3 / Example 2, P-node graph -------------------------- *)
  Format.printf "@.=== Example 2 (Figure 3): the P-node graph detects it ===@.";
  let w2 = Wr.check Paper_examples.example2 in
  let pg = w2.Wr.graph.P_node_graph.graph in
  Format.printf "  P-node graph: %d nodes, %d edges@." (P_node_graph.G.n_nodes pg)
    (P_node_graph.G.n_edges pg);
  List.iter
    (fun (src, dst, label) -> Format.printf "    %s -> %s [%s]@." src dst label)
    (P_node_graph.edge_list pg);
  rule_line "dangerous cycle (s,m,d; no i)" (string_of_bool w2.Wr.dangerous);
  rule_line "WR  (paper: no)" (string_of_bool w2.Wr.wr);

  (* ---- Example 3 ---------------------------------------------------- *)
  Format.printf "@.=== Example 3: beyond all prior classes, yet WR ===@.";
  let p3 = Paper_examples.example3 in
  let report = Classifier.classify p3 in
  rule_line "simple (paper: no — repeated variables)" (string_of_bool report.Classifier.simple);
  rule_line "linear (paper: no)" (string_of_bool report.Classifier.linear);
  rule_line "multilinear (paper: no)" (string_of_bool report.Classifier.multilinear);
  rule_line "sticky (paper: no)" (string_of_bool report.Classifier.sticky);
  rule_line "sticky-join (paper: no)" (string_of_bool report.Classifier.sticky_join);
  rule_line "SWR (paper: no)" (string_of_bool report.Classifier.swr);
  rule_line "WR  (paper: yes)" (string_of_bool report.Classifier.wr);

  (* FO-rewritability of Example 3 in action: atomic queries terminate. *)
  Format.printf "  rewritings of atomic queries:@.";
  List.iter
    (fun (pred, arity) ->
      let vars = List.init arity (fun i -> Tgd_logic.Term.var (Printf.sprintf "X%d" i)) in
      let q =
        Tgd_logic.Cq.make ~name:"q" ~answer:vars
          ~body:[ Tgd_logic.Atom.make pred vars ]
      in
      let r = Tgd_rewrite.Rewrite.ucq p3 q in
      Format.printf "    q over %s: %s, %d disjunct(s)@." (Tgd_logic.Symbol.name pred)
        (match r.Tgd_rewrite.Rewrite.outcome with
        | Tgd_rewrite.Rewrite.Complete -> "complete"
        | Tgd_rewrite.Rewrite.Truncated d -> "truncated: " ^ Tgd_exec.Governor.diag_summary d)
        (List.length r.Tgd_rewrite.Rewrite.ucq))
    (Tgd_logic.Program.predicates p3)
